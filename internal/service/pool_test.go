package service

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(2, 4)
	var ran atomic.Int64
	done := make(chan struct{}, 6)
	for i := 0; i < 6; i++ {
		submitWithRetry(t, p, func() {
			ran.Add(1)
			done <- struct{}{}
		})
	}
	for i := 0; i < 6; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for jobs")
		}
	}
	if ran.Load() != 6 {
		t.Fatalf("ran %d jobs, want 6", ran.Load())
	}
	p.Close()
}

// submitWithRetry tolerates transient ErrBusy while workers drain.
func submitWithRetry(t *testing.T, p *Pool, job func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := p.TrySubmit(job)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrBusy) || time.Now().After(deadline) {
			t.Fatalf("TrySubmit: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPoolBackpressure(t *testing.T) {
	p := NewPool(1, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	// Occupy the single worker...
	if err := p.TrySubmit(func() { close(started); <-release }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started
	// ...fill the single queue slot...
	if err := p.TrySubmit(func() { <-release }); err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if d := p.QueueDepth(); d != 1 {
		t.Fatalf("QueueDepth = %d, want 1", d)
	}
	// ...and the next submission must shed load, not block.
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow submit = %v, want ErrBusy", err)
	}
	close(release)
	p.Close()
}

// TestPoolQueueHighWater pins the high-water semantics: the mark records
// the deepest admission depth and survives draining, while the instantaneous
// depth falls back to 0 — the distinction that makes capacity reports
// trustworthy (a drained queue must not read as "never backlogged").
func TestPoolQueueHighWater(t *testing.T) {
	p := NewPool(1, 4)
	release := make(chan struct{})
	started := make(chan struct{})
	if err := p.TrySubmit(func() { close(started); <-release }); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started
	// The first submit may or may not have been observed in the queue
	// before its worker dequeued it, so the mark is 0 or 1 here — not
	// asserted. Fill three of the four queue slots behind the blocked
	// worker; those depths are deterministic.
	for i := 0; i < 3; i++ {
		if err := p.TrySubmit(func() { <-release }); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if hw := p.QueueHighWater(); hw != 3 {
		t.Fatalf("QueueHighWater = %d with 3 queued jobs, want 3", hw)
	}
	close(release)
	p.Close() // drains the queue
	if d := p.QueueDepth(); d != 0 {
		t.Fatalf("QueueDepth = %d after drain, want 0", d)
	}
	if hw := p.QueueHighWater(); hw != 3 {
		t.Fatalf("QueueHighWater = %d after drain, want 3 (the mark must survive draining)", hw)
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(1, 4)
	var ran atomic.Int64
	for i := 0; i < 3; i++ {
		if err := p.TrySubmit(func() { ran.Add(1) }); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	p.Close() // must drain the queue before returning
	if ran.Load() != 3 {
		t.Fatalf("Close returned with %d of 3 jobs run", ran.Load())
	}
	if err := p.TrySubmit(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// TestPoolCloseUnderConcurrentSubmit races many submitters against Close.
// Admission is lock-free, so the only thing standing between a late
// TrySubmit and a send-on-closed-channel panic is the closed/sending
// handshake — this test (run under -race in CI) is its pin. Every job that
// was accepted must also have run by the time Close returns.
func TestPoolCloseUnderConcurrentSubmit(t *testing.T) {
	for round := 0; round < 50; round++ {
		p := NewPool(2, 64)
		var accepted, ran atomic.Int64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := p.TrySubmit(func() { ran.Add(1) })
					switch {
					case err == nil:
						accepted.Add(1)
					case errors.Is(err, ErrClosed):
						return
					case errors.Is(err, ErrBusy):
						// Overload is a valid outcome; keep hammering.
					default:
						panic(err)
					}
				}
			}()
		}
		runtime.Gosched()
		p.Close()
		close(stop)
		wg.Wait()
		if a, r := accepted.Load(), ran.Load(); a != r {
			t.Fatalf("round %d: accepted %d jobs but ran %d — Close dropped queued work", round, a, r)
		}
	}
}

func TestPoolDefaults(t *testing.T) {
	p := NewPool(0, 0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers = %d, want >= 1", p.Workers())
	}
	if p.QueueCapacity() != 2*p.Workers() {
		t.Fatalf("QueueCapacity = %d, want %d", p.QueueCapacity(), 2*p.Workers())
	}
}

// BenchmarkPoolTrySubmit measures parallel admission — the door hot path
// every request crosses. It is part of the pinned benchdiff set: admission
// must stay allocation-free, and the lock-free fast path must not regress
// back to a global mutex. Workers drain no-op jobs so the benchmark
// exercises both the accept path and the ErrBusy shed path under
// contention.
func BenchmarkPoolTrySubmit(b *testing.B) {
	p := NewPool(2, 1024)
	defer p.Close()
	job := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if err := p.TrySubmit(job); err != nil && !errors.Is(err, ErrBusy) {
				b.Fatal(err)
			}
		}
	})
}
