package service

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// occupyWorkers parks every pool worker in a fake flight so queued jobs
// cannot start until the returned release func is called. release also waits
// for the blocking requests to finish, so after it returns the blockers have
// contributed exactly Workers() cache misses and nothing is in flight but
// the test's own traffic.
func occupyWorkers(t *testing.T, s *Server) (release func()) {
	t.Helper()
	block := make(chan struct{})
	n := s.Workers()
	started := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		fp := Fingerprint{0xff, byte(i)}
		rec := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/x", nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveCached(rec, r, fp, "blocking", func() ([]byte, error) {
				started <- struct{}{}
				<-block
				return []byte(`{}`), nil
			}, nil)
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("pool workers did not start the blocking jobs")
		}
	}
	return func() {
		close(block)
		wg.Wait()
	}
}

// awaitFlight polls until a flight for fp is registered.
func awaitFlight(t *testing.T, s *Server, fp Fingerprint) *flight {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.flightMu.Lock()
		f := s.flights[fp]
		s.flightMu.Unlock()
		if f != nil {
			return f
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight %x never registered", fp[:4])
		}
		time.Sleep(time.Millisecond)
	}
}

// awaitWaiters polls until the flight's waiter count reaches n.
func awaitWaiters(t *testing.T, f *flight, n int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.waiters.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("flight waiters = %d, want %d", f.waiters.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// awaitNoFlight polls until no flight for fp exists (its job ran or was
// skipped and the flight retired).
func awaitNoFlight(t *testing.T, s *Server, fp Fingerprint) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.flightMu.Lock()
		_, inFlight := s.flights[fp]
		s.flightMu.Unlock()
		if !inFlight {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight %x never retired", fp[:4])
		}
		time.Sleep(time.Millisecond)
	}
}

// A queued request whose client disconnected, with nobody else waiting on
// the flight, must be skipped: the compute func never runs, no worker time
// is spent, the pooled-request cleanup still fires exactly once, and the
// request terminates in cancelled_requests.
func TestCancelledLeaderNoWaitersSkipsCompute(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 16})
	t.Cleanup(s.Close)
	release := occupyWorkers(t, s)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the job can start
	r := httptest.NewRequest(http.MethodPost, "/x", nil).WithContext(ctx)
	fp := Fingerprint{1}
	var computed, cleanups atomic.Int64
	status, ok := s.serveCached(httptest.NewRecorder(), r, fp, "op",
		func() ([]byte, error) { computed.Add(1); return []byte(`{}`), nil },
		func() { cleanups.Add(1) })
	if ok || status != "" {
		t.Fatalf("cancelled leader returned (%q, %v), want (\"\", false)", status, ok)
	}
	if got := s.cancelled.Load(); got != 1 {
		t.Fatalf("cancelled_requests = %d, want 1", got)
	}

	release()
	awaitNoFlight(t, s, fp)
	if computed.Load() != 0 {
		t.Fatal("compute ran for a request nobody was waiting on")
	}
	if cleanups.Load() != 1 {
		t.Fatalf("cleanup ran %d times, want exactly 1", cleanups.Load())
	}
	if _, hit := s.cache.Get(fp); hit {
		t.Fatal("skipped request populated the cache")
	}

	// The fingerprint is not poisoned: the next request computes normally.
	live := httptest.NewRequest(http.MethodPost, "/x", nil)
	status, ok = s.serveCached(httptest.NewRecorder(), live, fp, "op",
		func() ([]byte, error) { computed.Add(1); return []byte(`{}`), nil }, nil)
	if !ok || status != "miss" || computed.Load() != 1 {
		t.Fatalf("retry after skip: (%q, %v), computes %d; want a fresh miss", status, ok, computed.Load())
	}
}

// A cancelled leader with a live follower must NOT be skipped: the job still
// computes, the follower is served the bytes, and the result reaches the
// cache. The leader alone terminates in cancelled_requests.
func TestCancelledLeaderWithFollowerStillComputes(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 16})
	t.Cleanup(s.Close)
	release := occupyWorkers(t, s)

	fp := Fingerprint{2}
	var computed atomic.Int64
	compute := func() ([]byte, error) { computed.Add(1); return []byte(`{"x":1}` + "\n"), nil }

	ctxL, cancelL := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		r := httptest.NewRequest(http.MethodPost, "/x", nil).WithContext(ctxL)
		s.serveCached(httptest.NewRecorder(), r, fp, "op", compute, nil)
	}()
	// Wait for the leader to register the flight, then attach a follower.
	f := awaitFlight(t, s, fp)
	followerRec := httptest.NewRecorder()
	followerDone := make(chan struct{})
	var followerStatus string
	var followerOK bool
	go func() {
		defer close(followerDone)
		r := httptest.NewRequest(http.MethodPost, "/x", nil)
		followerStatus, followerOK = s.serveCached(followerRec, r, fp, "op", compute, nil)
	}()
	awaitWaiters(t, f, 1)

	// Now the client behind the leader disconnects — and only then does a
	// worker become free.
	cancelL()
	<-leaderDone
	release()
	<-followerDone

	if !followerOK || followerStatus != "hit" {
		t.Fatalf("follower got (%q, %v), want a singleflight hit", followerStatus, followerOK)
	}
	if followerRec.Body.String() != `{"x":1}`+"\n" {
		t.Fatalf("follower body %q", followerRec.Body.String())
	}
	if computed.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (skipping would starve the follower)", computed.Load())
	}
	if _, hit := s.cache.Get(fp); !hit {
		t.Fatal("computed result did not reach the cache")
	}
	if got := s.cancelled.Load(); got != 1 {
		t.Fatalf("cancelled_requests = %d, want 1 (the leader)", got)
	}
	// One hit (the follower); the only miss is the blocker's — the cancelled
	// leader terminates in cancelled_requests, not in misses.
	if s.hits.Load() != 1 || s.misses.Load() != 1 {
		t.Fatalf("hits %d misses %d, want 1 and 1 (follower hit; only the blocker missed)",
			s.hits.Load(), s.misses.Load())
	}
}

// A follower whose client disconnects while the flight is still computing
// detaches (so the skip check sees one waiter fewer) and terminates in
// cancelled_requests; the flight itself is unaffected.
func TestCancelledFollowerDetaches(t *testing.T) {
	s := New(Config{Workers: 1, Queue: 16})
	t.Cleanup(s.Close)
	release := occupyWorkers(t, s)

	fp := Fingerprint{3}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		r := httptest.NewRequest(http.MethodPost, "/x", nil)
		s.serveCached(httptest.NewRecorder(), r, fp, "op",
			func() ([]byte, error) { return []byte(`{}`), nil }, nil)
	}()
	f := awaitFlight(t, s, fp)

	ctxF, cancelF := context.WithCancel(context.Background())
	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		r := httptest.NewRequest(http.MethodPost, "/x", nil).WithContext(ctxF)
		s.serveCached(httptest.NewRecorder(), r, fp, "op", nil, nil)
	}()
	awaitWaiters(t, f, 1)
	cancelF()
	<-followerDone
	if f.waiters.Load() != 0 {
		t.Fatalf("waiters = %d after follower cancel, want 0", f.waiters.Load())
	}
	if s.cancelled.Load() != 1 {
		t.Fatalf("cancelled_requests = %d, want 1", s.cancelled.Load())
	}

	release()
	<-leaderDone
	// Two misses: the blocker's and the (uncancelled) leader's.
	if s.misses.Load() != 2 {
		t.Fatalf("misses = %d, want 2 (blocker + leader)", s.misses.Load())
	}
}

// TestSoakCancellationConservation drives real HTTP traffic with a mix of
// patient clients and clients that disconnect at random moments, then checks
// the /stats conservation invariant the cancellation counter extends:
// requests == cache_hits + cache_misses + client_errors + internal_errors +
// cancelled_requests. Runs under -race in CI.
func TestSoakCancellationConservation(t *testing.T) {
	srv, ts := startServer(t, Config{Workers: 2, Queue: 512})

	// 6 distinct schedule bodies plus one malformed; tiny client deadlines
	// force a spread of cancellation points (before send, mid-queue, after
	// completion).
	var bodies [][]byte
	for i := 0; i < 6; i++ {
		req := testRequest(t)
		req.Seed = int64(i)
		req.Epsilon = i%2 + 1
		bodies = append(bodies, marshalRequest(t, req))
	}
	bodies = append(bodies, []byte(`{"epsilon": "many"}`))

	const parallel, perG = 16, 24
	var wg sync.WaitGroup
	for g := 0; g < parallel; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				body := bodies[rng.Intn(len(bodies))]
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Intn(2) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(2000))*time.Microsecond)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/schedule", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					cancel()
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := http.DefaultClient.Do(req)
				if err == nil {
					resp.Body.Close()
				}
				cancel()
			}
		}(g)
	}
	wg.Wait()

	// Every handler has returned (the client observed a response or an
	// error), so the counters are final even if skipped jobs still drain.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	terminal := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors + st.CancelledRequests
	if terminal != st.Requests {
		t.Fatalf("counters leak: hits %d + misses %d + 4xx %d + 5xx %d + cancelled %d = %d, requests %d",
			st.CacheHits, st.CacheMisses, st.ClientErrors, st.InternalErrors, st.CancelledRequests,
			terminal, st.Requests)
	}
	if st.InternalErrors != 0 {
		t.Fatalf("internal errors under soak: %d", st.InternalErrors)
	}
	// Sanity on the mix: the distinct well-formed bodies can miss at most a
	// handful of times each (a cancelled+skipped body may recompute later).
	if st.CacheMisses == 0 {
		t.Fatal("soak computed nothing")
	}
	_ = srv
}
