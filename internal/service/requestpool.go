package service

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// The decode pool recycles the request struct together with its payload
// storage: the graph's adjacency arena (dag.Graph.UnmarshalJSON rebuilds in
// place) and the platform and cost-model matrices (their UnmarshalJSON
// decodes into existing rows). A warm decode of a same-shaped request
// performs no payload-sized allocations.
var scheduleRequestPool = sync.Pool{New: func() any { return new(ScheduleRequest) }}

// AcquireScheduleRequest returns a pooled request for use with
// DecodeScheduleRequestInto. Pass it to ReleaseScheduleRequest once the
// request — and everything aliasing its graph, platform or costs: schedules,
// frozen views, responses under construction — is no longer referenced.
func AcquireScheduleRequest() *ScheduleRequest {
	req := scheduleRequestPool.Get().(*ScheduleRequest)
	if req.Graph == nil {
		req.Graph = new(dag.Graph)
	}
	if req.Platform == nil {
		req.Platform = new(platform.Platform)
	}
	if req.Costs == nil {
		req.Costs = new(platform.CostModel)
	}
	return req
}

// ReleaseScheduleRequest recycles a request obtained from
// AcquireScheduleRequest, keeping its payload storage for the next decode.
// Safe only once nothing aliases the request's sub-objects.
func ReleaseScheduleRequest(req *ScheduleRequest) {
	if req == nil {
		return
	}
	g, p, cm := req.Graph, req.Platform, req.Costs
	*req = ScheduleRequest{Graph: g, Platform: p, Costs: cm}
	scheduleRequestPool.Put(req)
}

// presentField decodes a JSON value into a caller-supplied destination while
// distinguishing "present" from "absent or null". json.Unmarshal leaves
// absent fields untouched and writes nil through pointer fields on null; with
// recycled destinations both cases must surface as a nil pointer (Validate's
// "missing field" error), never as the previous request's data.
type presentField[T any] struct {
	v   *T
	set bool
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *presentField[T]) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		f.set = false
		return nil
	}
	f.set = true
	// The outer decoder has already syntax-checked b, so a destination with
	// its own UnmarshalJSON can take the bytes directly; going through
	// json.Unmarshal would scan the value a second time just to rediscover
	// the Unmarshaler.
	if u, ok := any(f.v).(json.Unmarshaler); ok {
		return u.UnmarshalJSON(b)
	}
	return json.Unmarshal(b, f.v)
}

// scheduleWire mirrors ScheduleRequest field for field on the wire; it exists
// so DisallowUnknownFields sees the exact same field set while the instance
// payloads decode into recycled storage with presence tracking.
type scheduleWire struct {
	Graph           presentField[dag.Graph]          `json:"graph"`
	Platform        presentField[platform.Platform]  `json:"platform"`
	Costs           presentField[platform.CostModel] `json:"costs"`
	Scheduler       string                           `json:"scheduler"`
	Epsilon         int                              `json:"epsilon"`
	Policy          string                           `json:"policy,omitempty"`
	Seed            int64                            `json:"seed,omitempty"`
	Lambda          float64                          `json:"lambda,omitempty"`
	IncludeGantt    bool                             `json:"include_gantt,omitempty"`
	IncludeSchedule bool                             `json:"include_schedule,omitempty"`
}

// DecodeScheduleRequestInto is DecodeScheduleRequest decoding into req's
// existing graph, platform and cost-model storage — with a request from
// AcquireScheduleRequest, the graph decodes through its adjacency arena and
// the warm path stops allocating for adjacency. Accepts and rejects exactly
// the bodies DecodeScheduleRequest does.
func DecodeScheduleRequestInto(req *ScheduleRequest, r io.Reader) error {
	if req.Graph == nil {
		req.Graph = new(dag.Graph)
	}
	if req.Platform == nil {
		req.Platform = new(platform.Platform)
	}
	if req.Costs == nil {
		req.Costs = new(platform.CostModel)
	}
	w := scheduleWire{
		Graph:    presentField[dag.Graph]{v: req.Graph},
		Platform: presentField[platform.Platform]{v: req.Platform},
		Costs:    presentField[platform.CostModel]{v: req.Costs},
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: unexpected data after the JSON body")
	}
	g, p, cm := req.Graph, req.Platform, req.Costs
	*req = ScheduleRequest{
		Scheduler:       w.Scheduler,
		Epsilon:         w.Epsilon,
		Policy:          w.Policy,
		Seed:            w.Seed,
		Lambda:          w.Lambda,
		IncludeGantt:    w.IncludeGantt,
		IncludeSchedule: w.IncludeSchedule,
	}
	if w.Graph.set {
		req.Graph = g
	}
	if w.Platform.set {
		req.Platform = p
	}
	if w.Costs.set {
		req.Costs = cm
	}
	return req.Validate()
}
