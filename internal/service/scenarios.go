package service

import (
	"fmt"
	"net/http"
	"strings"

	"ftsched/internal/sim"
)

// ScenarioKindInfo is one scenario kind of a GET /scenarios response — the
// registry entry's documented surface, minus its behaviors.
type ScenarioKindInfo struct {
	// Name is the canonical kind name; Aliases are accepted alternatives.
	Name    string   `json:"name"`
	Aliases []string `json:"aliases,omitempty"`
	// Summary is the one-line description; FlagForm the colon-separated CLI
	// syntax (ftsched -scenario, ftexp specs).
	Summary  string `json:"summary"`
	FlagForm string `json:"flag_form"`
	// Params documents the scenario-spec fields the kind reads.
	Params []sim.ScenarioParam `json:"params"`
}

// ScenariosResponse is the body of GET /scenarios: every registered
// failure-scenario kind, in registration order.
type ScenariosResponse struct {
	Kinds []ScenarioKindInfo `json:"kinds"`
}

// scenarioKindInfos projects the registry onto the discovery surface.
func scenarioKindInfos() []ScenarioKindInfo {
	regs := sim.ScenarioKindRegs()
	out := make([]ScenarioKindInfo, 0, len(regs))
	for _, k := range regs {
		out = append(out, ScenarioKindInfo{
			Name:     k.Name,
			Aliases:  k.Aliases,
			Summary:  k.Summary,
			FlagForm: k.FlagForm,
			Params:   k.Params,
		})
	}
	return out
}

// ScenariosHandler serves GET /scenarios: scenario-kind discovery, generated
// from the registry so the response can never go stale. The registry is
// process-global and fixed after init, so any front door can serve it
// directly — the coordinator answers at the door instead of hopping to a
// shard. Like /stats and /healthz it is an uncounted read — no request
// counter, no cache (the body is already deterministic).
func ScenariosHandler(w http.ResponseWriter, r *http.Request) {
	body, err := marshalCompact(&ScenariosResponse{Kinds: scenarioKindInfos()})
	if err != nil {
		writeErrorBody(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	ScenariosHandler(w, r)
}

// ScenarioKindTable renders the scenario-kind registry as a GitHub-flavored
// markdown table. docs/API.md embeds it between generated-table markers, and
// a drift test asserts the embedded copy matches, so the documented kind list
// cannot go stale.
func ScenarioKindTable() string {
	var b strings.Builder
	b.WriteString("| Kind | Flag form | Parameters | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, k := range scenarioKindInfos() {
		name := k.Name
		if len(k.Aliases) > 0 {
			name += " (alias " + strings.Join(k.Aliases, ", ") + ")"
		}
		params := make([]string, 0, len(k.Params))
		for _, p := range k.Params {
			entry := fmt.Sprintf("`%s` (%s)", p.Name, p.Type)
			if p.Optional {
				entry += " optional"
			}
			params = append(params, entry)
		}
		fmt.Fprintf(&b, "| %s | `%s` | %s | %s |\n",
			name, k.FlagForm, strings.Join(params, ", "), k.Summary)
	}
	return b.String()
}
