package service

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"ftsched/internal/sched"
	"ftsched/internal/sim"
)

// TestSoakMixedTraffic pounds one server with 4 waves of 256 concurrent
// mixed /schedule + /evaluate + /tune requests (plus a sprinkling of
// malformed ones), asserting the serving invariants hold under load:
//
//   - every response for one request body is byte-identical, cache hits and
//     misses alike;
//   - the /stats counters conserve: requests = cache_hits + cache_misses +
//     client_errors + internal_errors + cancelled_requests (every accepted
//     request is served, every rejected one accounted; no client disconnects
//     here, so cancelled must stay 0), and the per-scheduler table accounts
//     for every well-formed request (a /tune sweep once per registered
//     scheduler);
//   - after wave one, repeat bodies hit the cache.
//
// The CI race job runs this package under -race, which makes the soak a
// concurrency audit of the whole serving path.
func TestSoakMixedTraffic(t *testing.T) {
	_, ts := startServer(t, Config{Queue: 512})

	// 18 distinct request bodies: 8 schedule (4 problems × 2 schedulers),
	// 7 evaluate (varying scenario/trials/seed), 2 tune, 1 malformed.
	type probe struct {
		path string
		body []byte
		// schedWeight is the request's contribution to the per-scheduler
		// /stats table: 1 for single-scheduler endpoints, the registry size
		// for a /tune sweep, 0 for malformed bodies.
		schedWeight int
	}
	var probes []probe
	for i := 0; i < 8; i++ {
		req := testRequest(t)
		req.Epsilon = i%2 + 1
		req.Seed = int64(i / 2)
		if i%4 == 3 {
			req.Scheduler = "mcftsa"
		}
		probes = append(probes, probe{"/schedule", marshalJSON(t, req), 1})
	}
	scenarios := []sim.ScenarioSpec{
		{Kind: "uniform", Crashes: 1},
		{Kind: "uniform", Crashes: 2},
		{Kind: "exp", Lambda: 0.05},
		{Kind: "weibull", Shape: 2, Scale: 30},
		{Kind: "group", GroupSize: 2, Lambda: 0.05},
		{Kind: "burst", Crashes: 2, Lambda: 0.05, Spread: 2},
		{Kind: "staggered", Crashes: 1, Horizon: 10},
	}
	for i, sc := range scenarios {
		req := testEvaluateRequest(t)
		req.Scenario = sc
		req.Trials = 30 + i
		req.EvalSeed = int64(i)
		probes = append(probes, probe{"/evaluate", marshalJSON(t, req), 1})
	}
	for i := 0; i < 2; i++ {
		req := testTuneRequest(t)
		req.Trials = 24 + 8*i
		req.EvalSeed = int64(i)
		probes = append(probes, probe{"/tune", marshalJSON(t, req), len(sched.Names())})
	}
	probes = append(probes, probe{"/evaluate", []byte(`{"trials": "soon"}`), 0})

	const waves, parallel = 4, 256
	var mu sync.Mutex
	canonical := make(map[int][]byte) // probe index -> first OK body
	wantErrors := 0

	for wave := 0; wave < waves; wave++ {
		var wg sync.WaitGroup
		errs := make(chan error, parallel)
		for i := 0; i < parallel; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pi := i % len(probes)
				p := probes[pi]
				resp, data := postJSON(t, ts.URL+p.path, p.body)
				switch resp.StatusCode {
				case http.StatusOK:
					mu.Lock()
					if prev, ok := canonical[pi]; !ok {
						canonical[pi] = data
					} else if !bytes.Equal(prev, data) {
						mu.Unlock()
						errs <- fmt.Errorf("probe %d: response bytes changed between requests", pi)
						return
					}
					mu.Unlock()
				case http.StatusBadRequest:
					mu.Lock()
					wantErrors++
					mu.Unlock()
				default:
					errs <- fmt.Errorf("probe %d (%s): unexpected status %d: %s", pi, p.path, resp.StatusCode, data)
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}

	// The malformed probe must have 400'd every time it was sent.
	sent := 0
	for i := 0; i < waves*parallel; i++ {
		if i%len(probes) == len(probes)-1 {
			sent++
		}
	}
	if wantErrors != sent {
		t.Fatalf("malformed probe got %d 400s, want %d", wantErrors, sent)
	}

	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	total := waves * parallel
	if st.Requests != uint64(total) {
		t.Fatalf("requests = %d, want %d", st.Requests, total)
	}
	// Conservation: every request ends in exactly one terminal counter.
	served := st.CacheHits + st.CacheMisses + st.ClientErrors + st.InternalErrors + st.CancelledRequests
	if served != st.Requests {
		t.Fatalf("counters leak: hits %d + misses %d + 4xx %d + 5xx %d + cancelled %d = %d, requests %d",
			st.CacheHits, st.CacheMisses, st.ClientErrors, st.InternalErrors, st.CancelledRequests,
			served, st.Requests)
	}
	if st.CancelledRequests != 0 {
		t.Fatalf("cancelled_requests = %d with no disconnecting clients", st.CancelledRequests)
	}
	if st.InternalErrors != 0 {
		t.Fatalf("internal errors under soak: %d", st.InternalErrors)
	}
	if st.ClientErrors != uint64(wantErrors) {
		t.Fatalf("client_errors = %d, want %d", st.ClientErrors, wantErrors)
	}
	// Singleflight makes the miss count exact: concurrent first-wave
	// requests for one body collapse onto a single computation, so each
	// distinct well-formed probe misses exactly once and everything else is
	// a hit (some served by attaching to a live flight).
	wellFormed := uint64(total - wantErrors)
	distinct := uint64(len(probes) - 1)
	if st.CacheMisses != distinct {
		t.Fatalf("cache misses = %d, want exactly %d (one per distinct probe under singleflight)",
			st.CacheMisses, distinct)
	}
	if st.CacheHits != wellFormed-distinct {
		t.Fatalf("cache hits = %d, want %d", st.CacheHits, wellFormed-distinct)
	}
	if st.SingleflightShared > st.CacheHits {
		t.Fatalf("singleflight_shared = %d exceeds cache hits %d", st.SingleflightShared, st.CacheHits)
	}
	if st.EvaluateRequests == 0 || st.EvaluateRequests >= st.Requests {
		t.Fatalf("evaluate_requests = %d of %d, want a proper mix", st.EvaluateRequests, st.Requests)
	}
	if st.TuneRequests == 0 || st.TuneRequests >= st.Requests {
		t.Fatalf("tune_requests = %d of %d, want a proper mix", st.TuneRequests, st.Requests)
	}
	// All three POST endpoints fold into the per-scheduler attribution: a
	// weighted conservation over the probes that were actually sent (every
	// wave distributes its goroutines i = 0..parallel-1 over i % len(probes)).
	var wantPerSched uint64
	for i := 0; i < parallel; i++ {
		wantPerSched += uint64(waves * probes[i%len(probes)].schedWeight)
	}
	var perSched uint64
	for _, n := range st.SchedulerRequests {
		perSched += n
	}
	if perSched != wantPerSched {
		t.Fatalf("scheduler_requests sums to %d, want %d", perSched, wantPerSched)
	}
}
