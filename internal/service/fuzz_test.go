package service

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeedBodies are the deterministic seeds of FuzzDecodePayload: the
// docs/API.md example requests (well-formed), their /evaluate extensions,
// and the malformed-table shapes the 400 tests pin. The native fuzzer
// mutates these into the adversarial corpus; small regression inputs are
// checked in under testdata/fuzz.
var fuzzSeedBodies = []string{
	// docs/API.md: the diamond FTSA example.
	`{
	  "graph": {
	    "name": "diamond",
	    "tasks": 4,
	    "edges": [
	      {"src": 0, "dst": 1, "volume": 1},
	      {"src": 0, "dst": 2, "volume": 2},
	      {"src": 1, "dst": 3, "volume": 1},
	      {"src": 2, "dst": 3, "volume": 0.5}
	    ]
	  },
	  "platform": {
	    "procs": 3,
	    "delay": [[0, 0.5, 0.5], [0.5, 0, 0.5], [0.5, 0.5, 0]]
	  },
	  "costs": {
	    "cost": [[1, 2, 1.5], [2, 1, 1], [1, 1, 2], [2, 1.5, 1]]
	  },
	  "scheduler": "ftsa",
	  "epsilon": 1
	}`,
	// docs/API.md: the MC-FTSA variant with options.
	`{"graph": {"name": "d", "tasks": 2, "edges": [{"src": 0, "dst": 1, "volume": 1}]},
	  "platform": {"procs": 2, "delay": [[0, 1], [1, 0]]},
	  "costs": {"cost": [[1, 2], [2, 1]]},
	  "scheduler": "mcftsa", "epsilon": 1, "lambda": 0.001, "include_gantt": true}`,
	// docs/API.md: the /evaluate example shape.
	`{"graph": {"name": "d", "tasks": 2, "edges": [{"src": 0, "dst": 1, "volume": 1}]},
	  "platform": {"procs": 2, "delay": [[0, 1], [1, 0]]},
	  "costs": {"cost": [[1, 2], [2, 1]]},
	  "scheduler": "ftsa", "epsilon": 1,
	  "trials": 100, "scenario": {"kind": "uniform", "crashes": 1}, "eval_seed": 7}`,
	// The 400-table shapes.
	"",
	"epsilon=1",
	`{"graph": {"name":`,
	`{"graph": 7, "platform": [], "costs": "x", "scheduler": 1}`,
	`{"scheduler": "ftsa", "epsilon": 1}`,
	`{"trials": "soon"}`,
	`{"scenario": {"kind": "weibull", "shape": -1}}`,
	// Adversarial numerics: huge dims, NaN-ish text, deep nesting.
	`{"graph": {"tasks": 99999999999999999999}}`,
	`{"graph": {"name": "x", "tasks": 2, "edges": [{"src": 0, "dst": 1, "volume": 1e309}]}}`,
	`{"graph": {"name": "x", "tasks": -1, "edges": []}}`,
	`{"platform": {"procs": 2, "delay": [[0]]}}`,
	`[[[[[[[[[[]]]]]]]]]]`,
	`{"graph": null, "platform": null, "costs": null, "scheduler": null}`,
	// /schedule/batch shapes: a well-formed two-item batch and degenerates.
	`{"graph": {"name": "d", "tasks": 2, "edges": [{"src": 0, "dst": 1, "volume": 1}]},
	  "platform": {"procs": 2, "delay": [[0, 1], [1, 0]]},
	  "costs": {"cost": [[1, 2], [2, 1]]},
	  "requests": [{"scheduler": "ftsa", "epsilon": 1}, {"scheduler": "heft"}]}`,
	`{"requests": []}`,
	`{"requests": [null]}`,
	// /missions shapes: a well-formed mission and a policy-only degenerate.
	`{"graph": {"name": "d", "tasks": 2, "edges": [{"src": 0, "dst": 1, "volume": 1}]},
	  "platform": {"procs": 2, "delay": [[0, 1], [1, 0]]},
	  "costs": {"cost": [[1, 2], [2, 1]]},
	  "scheduler": "ftsa", "epsilon": 1, "seed": 7,
	  "scenario": {"kind": "uniform", "crashes": 1}, "scenario_seed": 5,
	  "mission_policy": "reschedule"}`,
	`{"mission_policy": "optimistic"}`,
}

// FuzzDecodePayload proves malformed input never panics either endpoint's
// decoder: every outcome must be a clean (request, nil) or (nil, error), and
// an accepted request must survive fingerprinting (the next thing the
// handler does with it).
func FuzzDecodePayload(f *testing.F) {
	for _, seed := range fuzzSeedBodies {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		if req, err := DecodeScheduleRequest(bytes.NewReader(body)); err == nil {
			if req == nil {
				t.Fatal("DecodeScheduleRequest returned nil, nil")
			}
			_ = RequestFingerprint(req)
			_ = InstanceFingerprint(req.Graph, req.Platform, req.Costs)
		}
		if req, err := DecodeEvaluateRequest(bytes.NewReader(body)); err == nil {
			if req == nil {
				t.Fatal("DecodeEvaluateRequest returned nil, nil")
			}
			_ = EvaluateFingerprint(req)
			if _, err := req.Scenario.Generator(); err != nil {
				t.Fatalf("validated request carries an unusable scenario: %v", err)
			}
		}
		if req, err := DecodeBatchRequest(bytes.NewReader(body)); err == nil {
			if req == nil {
				t.Fatal("DecodeBatchRequest returned nil, nil")
			}
			if len(req.Items()) == 0 {
				t.Fatal("validated batch expands to zero items")
			}
			for _, it := range req.Items() {
				_ = RequestFingerprint(it)
			}
		}
		if req, err := DecodeMissionRequest(bytes.NewReader(body)); err == nil {
			if req == nil {
				t.Fatal("DecodeMissionRequest returned nil, nil")
			}
			// The fingerprint is the mission id, and the scenario drives the
			// controller — both must be usable for any accepted request.
			fp := MissionFingerprint(req)
			if _, err := ParseMissionID(MissionID(fp)); err != nil {
				t.Fatalf("mission id does not round-trip: %v", err)
			}
			if _, err := req.Scenario.Generator(); err != nil {
				t.Fatalf("validated request carries an unusable scenario: %v", err)
			}
		}
	})
}

// TestDecodeSeedCorpus keeps the seed corpus meaningful outside fuzzing: the
// well-formed seeds must decode, the malformed ones must error — all without
// panicking, which is the property the fuzzer then stretches.
func TestDecodeSeedCorpus(t *testing.T) {
	wantOK := map[int]string{0: "schedule", 1: "schedule", 2: "evaluate",
		len(fuzzSeedBodies) - 5: "batch", len(fuzzSeedBodies) - 2: "mission"}
	for i, seed := range fuzzSeedBodies {
		_, serr := DecodeScheduleRequest(strings.NewReader(seed))
		_, eerr := DecodeEvaluateRequest(strings.NewReader(seed))
		_, berr := DecodeBatchRequest(strings.NewReader(seed))
		_, merr := DecodeMissionRequest(strings.NewReader(seed))
		switch wantOK[i] {
		case "schedule":
			if serr != nil {
				t.Errorf("seed %d: schedule decode failed: %v", i, serr)
			}
		case "evaluate":
			if eerr != nil {
				t.Errorf("seed %d: evaluate decode failed: %v", i, eerr)
			}
		case "batch":
			if berr != nil {
				t.Errorf("seed %d: batch decode failed: %v", i, berr)
			}
		case "mission":
			if merr != nil {
				t.Errorf("seed %d: mission decode failed: %v", i, merr)
			}
		default:
			if serr == nil && eerr == nil && berr == nil && merr == nil {
				t.Errorf("seed %d: malformed body accepted by every decoder", i)
			}
		}
	}
}
