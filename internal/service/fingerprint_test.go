package service

import (
	"math/rand"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// testInstance builds a small deterministic diamond instance.
func testInstance(t *testing.T, name string) (*dag.Graph, *platform.Platform, *platform.CostModel) {
	t.Helper()
	g := dag.NewWithTasks(name, 4)
	for _, e := range []struct {
		src, dst dag.TaskID
		vol      float64
	}{{0, 1, 1}, {0, 2, 2}, {1, 3, 1}, {2, 3, 0.5}} {
		if err := g.AddEdge(e.src, e.dst, e.vol); err != nil {
			t.Fatal(err)
		}
	}
	p, err := platform.New(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	cm, err := platform.NewRandomCostModel(rng, 4, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, p, cm
}

func testRequest(t *testing.T) *ScheduleRequest {
	t.Helper()
	g, p, cm := testInstance(t, "diamond")
	return &ScheduleRequest{Graph: g, Platform: p, Costs: cm, Scheduler: "ftsa", Epsilon: 1}
}

func TestRequestFingerprintDeterministic(t *testing.T) {
	a, b := testRequest(t), testRequest(t)
	if RequestFingerprint(a) != RequestFingerprint(b) {
		t.Fatal("identical requests produced different fingerprints")
	}
}

func TestRequestFingerprintSensitivity(t *testing.T) {
	base := RequestFingerprint(testRequest(t))
	mutations := map[string]func(*ScheduleRequest){
		"epsilon":          func(r *ScheduleRequest) { r.Epsilon = 2 },
		"scheduler":        func(r *ScheduleRequest) { r.Scheduler = "ftbar" },
		"seed":             func(r *ScheduleRequest) { r.Seed = 99 },
		"lambda":           func(r *ScheduleRequest) { r.Lambda = 0.01 },
		"include_gantt":    func(r *ScheduleRequest) { r.IncludeGantt = true },
		"include_schedule": func(r *ScheduleRequest) { r.IncludeSchedule = true },
		"policy":           func(r *ScheduleRequest) { r.Scheduler = "mcftsa"; r.Policy = "bottleneck" },
		"edge volume": func(r *ScheduleRequest) {
			g := dag.NewWithTasks("diamond", 4)
			for _, e := range []struct {
				src, dst dag.TaskID
				vol      float64
			}{{0, 1, 1.0001}, {0, 2, 2}, {1, 3, 1}, {2, 3, 0.5}} {
				if err := g.AddEdge(e.src, e.dst, e.vol); err != nil {
					t.Fatal(err)
				}
			}
			r.Graph = g
		},
		"cost entry": func(r *ScheduleRequest) {
			if err := r.Costs.SetCost(0, 0, 17); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mutate := range mutations {
		req := testRequest(t)
		mutate(req)
		if RequestFingerprint(req) == base {
			t.Errorf("mutation %q did not change the fingerprint", name)
		}
	}
}

// The scheduler name is matched case-insensitively by the API, so case must
// not split the cache.
func TestRequestFingerprintSchedulerCase(t *testing.T) {
	a, b := testRequest(t), testRequest(t)
	b.Scheduler = "FTSA"
	if RequestFingerprint(a) != RequestFingerprint(b) {
		t.Fatal("scheduler name case changed the fingerprint")
	}
}

// Equivalent spellings must share one cache entry: MC-FTSA's implicit
// default policy equals the explicit "greedy", and HEFT never consumes the
// seed.
func TestRequestFingerprintCanonicalization(t *testing.T) {
	a, b := testRequest(t), testRequest(t)
	a.Scheduler, b.Scheduler = "mcftsa", "mcftsa"
	b.Policy = "greedy"
	if RequestFingerprint(a) != RequestFingerprint(b) {
		t.Fatal("omitted policy and explicit greedy got different fingerprints")
	}
	c, d := testRequest(t), testRequest(t)
	c.Scheduler, d.Scheduler = "heft", "heft"
	c.Epsilon, d.Epsilon = 0, 0
	d.Seed = 123
	if RequestFingerprint(c) != RequestFingerprint(d) {
		t.Fatal("heft requests differing only in the unused seed got different fingerprints")
	}
}

// The graph's display name affects no response field, so renaming an
// instance must hit the same cache entries.
func TestInstanceFingerprintIgnoresName(t *testing.T) {
	g1, p, cm := testInstance(t, "alpha")
	g2, _, _ := testInstance(t, "beta")
	if InstanceFingerprint(g1, p, cm) != InstanceFingerprint(g2, p, cm) {
		t.Fatal("graph name changed the instance fingerprint")
	}
}

func TestInstanceFingerprintSharedAcrossParams(t *testing.T) {
	a, b := testRequest(t), testRequest(t)
	b.Epsilon = 2
	b.Scheduler = "mcftsa"
	fa := InstanceFingerprint(a.Graph, a.Platform, a.Costs)
	fb := InstanceFingerprint(b.Graph, b.Platform, b.Costs)
	if fa != fb {
		t.Fatal("scheduling parameters leaked into the instance fingerprint")
	}
}
