package workload_test

import (
	"fmt"
	"math/rand"

	"ftsched/internal/workload"
)

// ExampleNewInstance draws a complete scheduling problem with the paper's
// Section 6 parameters, scaled to an exact target granularity.
func ExampleNewInstance() {
	rng := rand.New(rand.NewSource(1))
	inst, err := workload.NewInstance(rng, workload.DefaultPaperConfig(0.8))
	if err != nil {
		panic(err)
	}
	g, _ := inst.Granularity()
	fmt.Printf("procs: %d, granularity: %.1f, tasks in [100,150]: %v\n",
		inst.Platform.NumProcs(), g,
		inst.Graph.NumTasks() >= 100 && inst.Graph.NumTasks() <= 150)
	// Output:
	// procs: 20, granularity: 0.8, tasks in [100,150]: true
}

// ExampleGaussianElimination builds the classic column-oriented Gaussian
// elimination DAG.
func ExampleGaussianElimination() {
	g, err := workload.GaussianElimination(4, 100)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d tasks, %d edges, %d entry, %d exit\n",
		g.NumTasks(), g.NumEdges(), len(g.Entries()), len(g.Exits()))
	// Output:
	// 9 tasks, 11 edges, 1 entry, 1 exit
}

// ExampleCholesky sizes the tiled Cholesky factorization DAG.
func ExampleCholesky() {
	for _, n := range []int{3, 5, 8} {
		g, err := workload.Cholesky(n, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("n=%d: %d tasks\n", n, g.NumTasks())
	}
	// Output:
	// n=3: 10 tasks
	// n=5: 35 tasks
	// n=8: 120 tasks
}
