package workload

import (
	"fmt"

	"ftsched/internal/dag"
)

// Additional dense linear-algebra kernel DAGs, the standard benchmark
// family for heterogeneous list scheduling (tiled Cholesky and LU), plus a
// parametric multi-stage pipeline. Tile coordinates map to task IDs in
// creation order; each constructor documents its dependence structure.

// Cholesky returns the task graph of tiled Cholesky factorization on an n×n
// tile matrix with the classic four kernels:
//
//	POTRF(k)          <- TRSM(k-1,k) chain head
//	TRSM(k,i), i>k    needs POTRF(k) and GEMM(k-1,i,k)
//	SYRK(k,i), i>k    needs TRSM(k,i) and SYRK(k-1,i)
//	GEMM(k,i,j)       needs TRSM(k,i), TRSM(k,j) and GEMM(k-1,i,j)
//
// yielding Θ(n³) tasks; n=5 gives 55 tasks, n=8 gives 204.
func Cholesky(n int, volume float64) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: cholesky needs n>=2, got %d", n)
	}
	g := dag.New(fmt.Sprintf("cholesky-%d", n))
	potrf := make([]dag.TaskID, n)
	trsm := make(map[[2]int]dag.TaskID) // (k,i)
	syrk := make(map[[2]int]dag.TaskID) // (k,i)
	gemm := make(map[[3]int]dag.TaskID) // (k,i,j), i>j>k
	for k := 0; k < n; k++ {
		potrf[k] = g.AddTask()
		if k > 0 {
			// POTRF(k) consumes the SYRK updates of column k.
			g.MustAddEdge(syrk[[2]int{k - 1, k}], potrf[k], volume)
		}
		for i := k + 1; i < n; i++ {
			trsm[[2]int{k, i}] = g.AddTask()
			g.MustAddEdge(potrf[k], trsm[[2]int{k, i}], volume)
			if k > 0 {
				g.MustAddEdge(gemm[[3]int{k - 1, i, k}], trsm[[2]int{k, i}], volume)
			}
		}
		for i := k + 1; i < n; i++ {
			syrk[[2]int{k, i}] = g.AddTask()
			g.MustAddEdge(trsm[[2]int{k, i}], syrk[[2]int{k, i}], volume)
			if k > 0 {
				g.MustAddEdge(syrk[[2]int{k - 1, i}], syrk[[2]int{k, i}], volume)
			}
			for j := k + 1; j < i; j++ {
				gemm[[3]int{k, i, j}] = g.AddTask()
				g.MustAddEdge(trsm[[2]int{k, i}], gemm[[3]int{k, i, j}], volume)
				g.MustAddEdge(trsm[[2]int{k, j}], gemm[[3]int{k, i, j}], volume)
				if k > 0 {
					g.MustAddEdge(gemm[[3]int{k - 1, i, j}], gemm[[3]int{k, i, j}], volume)
				}
			}
		}
	}
	return g, nil
}

// LU returns the task graph of tiled LU factorization without pivoting on
// an n×n tile matrix:
//
//	GETRF(k); TRSM on row and column k; GEMM(k,i,j) trailing updates.
func LU(n int, volume float64) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: lu needs n>=2, got %d", n)
	}
	g := dag.New(fmt.Sprintf("lu-%d", n))
	getrf := make([]dag.TaskID, n)
	trsmRow := make(map[[2]int]dag.TaskID) // (k,j): row panel
	trsmCol := make(map[[2]int]dag.TaskID) // (k,i): column panel
	gemm := make(map[[3]int]dag.TaskID)    // (k,i,j)
	for k := 0; k < n; k++ {
		getrf[k] = g.AddTask()
		if k > 0 {
			g.MustAddEdge(gemm[[3]int{k - 1, k, k}], getrf[k], volume)
		}
		for j := k + 1; j < n; j++ {
			trsmRow[[2]int{k, j}] = g.AddTask()
			g.MustAddEdge(getrf[k], trsmRow[[2]int{k, j}], volume)
			if k > 0 {
				g.MustAddEdge(gemm[[3]int{k - 1, k, j}], trsmRow[[2]int{k, j}], volume)
			}
		}
		for i := k + 1; i < n; i++ {
			trsmCol[[2]int{k, i}] = g.AddTask()
			g.MustAddEdge(getrf[k], trsmCol[[2]int{k, i}], volume)
			if k > 0 {
				g.MustAddEdge(gemm[[3]int{k - 1, i, k}], trsmCol[[2]int{k, i}], volume)
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				gemm[[3]int{k, i, j}] = g.AddTask()
				g.MustAddEdge(trsmCol[[2]int{k, i}], gemm[[3]int{k, i, j}], volume)
				g.MustAddEdge(trsmRow[[2]int{k, j}], gemm[[3]int{k, i, j}], volume)
				if k > 0 {
					g.MustAddEdge(gemm[[3]int{k - 1, i, j}], gemm[[3]int{k, i, j}], volume)
				}
			}
		}
	}
	return g, nil
}

// Pipeline returns a linear pipeline of stages, each stage a layer of width
// parallel tasks, consecutive layers fully connected — the streaming-
// application shape (e.g. video filters) common in fault-tolerance papers.
func Pipeline(stages, width int, volume float64) (*dag.Graph, error) {
	if stages < 1 || width < 1 {
		return nil, fmt.Errorf("workload: pipeline needs stages,width >= 1, got %d,%d", stages, width)
	}
	g := dag.New(fmt.Sprintf("pipeline-s%d-w%d", stages, width))
	prev := make([]dag.TaskID, 0, width)
	for s := 0; s < stages; s++ {
		cur := make([]dag.TaskID, width)
		for w := 0; w < width; w++ {
			cur[w] = g.AddTask()
			for _, p := range prev {
				g.MustAddEdge(p, cur[w], volume)
			}
		}
		prev = cur
	}
	return g, nil
}
