package workload

import (
	"fmt"
	"math"
	"math/rand"

	"ftsched/internal/dag"
)

// RandomDAGConfig parameterizes the layered random-graph generator.
type RandomDAGConfig struct {
	// MinTasks and MaxTasks bound the (uniformly drawn) task count; the
	// paper uses [100, 150].
	MinTasks, MaxTasks int
	// MinVolume and MaxVolume bound the uniformly drawn data volume per
	// edge; the paper uses [50, 150].
	MinVolume, MaxVolume float64
	// ShapeFactor controls the layer structure: the number of layers is
	// drawn around sqrt(v)·ShapeFactor. 1.0 gives balanced square-ish
	// graphs; <1 gives wide/parallel graphs; >1 gives deep/serial graphs.
	ShapeFactor float64
	// EdgeDensity is the probability of adding each optional extra edge
	// between tasks of consecutive layers, beyond the spanning edges that
	// keep the graph connected. In [0,1].
	EdgeDensity float64
}

// DefaultRandomDAGConfig returns the configuration used by the paper's
// experiments.
func DefaultRandomDAGConfig() RandomDAGConfig {
	return RandomDAGConfig{
		MinTasks:    100,
		MaxTasks:    150,
		MinVolume:   50,
		MaxVolume:   150,
		ShapeFactor: 1.0,
		EdgeDensity: 0.25,
	}
}

// Validate checks the configuration for consistency.
func (c RandomDAGConfig) Validate() error {
	if c.MinTasks < 1 || c.MaxTasks < c.MinTasks {
		return fmt.Errorf("workload: invalid task range [%d,%d]", c.MinTasks, c.MaxTasks)
	}
	if c.MinVolume < 0 || c.MaxVolume < c.MinVolume {
		return fmt.Errorf("workload: invalid volume range [%g,%g]", c.MinVolume, c.MaxVolume)
	}
	if c.ShapeFactor <= 0 {
		return fmt.Errorf("workload: non-positive shape factor %g", c.ShapeFactor)
	}
	if c.EdgeDensity < 0 || c.EdgeDensity > 1 {
		return fmt.Errorf("workload: edge density %g outside [0,1]", c.EdgeDensity)
	}
	return nil
}

// RandomDAG generates a layered random DAG:
//
//  1. draw v uniformly from [MinTasks, MaxTasks];
//  2. partition the v tasks into L ≈ sqrt(v)·ShapeFactor layers with random
//     (at least one) occupancy;
//  3. give every non-entry task at least one predecessor in the previous
//     layer (so precedence depth equals the layer index and the graph has no
//     isolated tasks);
//  4. add each other previous-layer pair as an edge with probability
//     EdgeDensity;
//  5. draw each edge volume uniformly from [MinVolume, MaxVolume).
//
// The generator is deterministic given rng's state.
func RandomDAG(rng *rand.Rand, cfg RandomDAGConfig) (*dag.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	v := cfg.MinTasks
	if cfg.MaxTasks > cfg.MinTasks {
		v += rng.Intn(cfg.MaxTasks - cfg.MinTasks + 1)
	}
	layers := layerSizes(rng, v, cfg.ShapeFactor)
	g := dag.NewWithTasks(fmt.Sprintf("random-v%d", v), v)

	vol := func() float64 {
		if cfg.MaxVolume == cfg.MinVolume {
			return cfg.MinVolume
		}
		return cfg.MinVolume + rng.Float64()*(cfg.MaxVolume-cfg.MinVolume)
	}

	// Assign dense IDs layer by layer: layer l covers [start[l], start[l+1]).
	start := make([]int, len(layers)+1)
	for i, sz := range layers {
		start[i+1] = start[i] + sz
	}
	for l := 1; l < len(layers); l++ {
		prevLo, prevHi := start[l-1], start[l]
		for t := start[l]; t < start[l+1]; t++ {
			// Spanning predecessor.
			p := prevLo + rng.Intn(prevHi-prevLo)
			g.MustAddEdge(dag.TaskID(p), dag.TaskID(t), vol())
			// Optional extra edges.
			for p2 := prevLo; p2 < prevHi; p2++ {
				if p2 == p {
					continue
				}
				if rng.Float64() < cfg.EdgeDensity {
					g.MustAddEdge(dag.TaskID(p2), dag.TaskID(t), vol())
				}
			}
		}
	}
	return g, nil
}

// layerSizes partitions v tasks into a random positive occupancy vector with
// about sqrt(v)*shape layers.
func layerSizes(rng *rand.Rand, v int, shape float64) []int {
	l := int(math.Round(math.Sqrt(float64(v)) * shape))
	if l < 1 {
		l = 1
	}
	if l > v {
		l = v
	}
	sizes := make([]int, l)
	for i := range sizes {
		sizes[i] = 1
	}
	for rem := v - l; rem > 0; rem-- {
		sizes[rng.Intn(l)]++
	}
	return sizes
}

// ErdosRenyiDAG generates a DAG by including each forward pair (i,j), i<j,
// independently with probability p, then adding a spanning edge to any task
// left with no predecessor (except task 0). Volumes are drawn uniformly from
// [minVol, maxVol). This is the classic G(n,p) DAG model, used in tests to
// exercise structurally different graphs than the layered generator.
func ErdosRenyiDAG(rng *rand.Rand, n int, p, minVol, maxVol float64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: need at least one task, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("workload: probability %g outside [0,1]", p)
	}
	if minVol < 0 || maxVol < minVol {
		return nil, fmt.Errorf("workload: invalid volume range [%g,%g]", minVol, maxVol)
	}
	g := dag.NewWithTasks(fmt.Sprintf("gnp-n%d-p%.2f", n, p), n)
	vol := func() float64 {
		if maxVol == minVol {
			return minVol
		}
		return minVol + rng.Float64()*(maxVol-minVol)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), vol())
			}
		}
	}
	for j := 1; j < n; j++ {
		if g.InDegree(dag.TaskID(j)) == 0 {
			i := rng.Intn(j)
			g.MustAddEdge(dag.TaskID(i), dag.TaskID(j), vol())
		}
	}
	return g, nil
}
