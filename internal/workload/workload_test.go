package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

func TestRandomDAGRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultRandomDAGConfig()
	for i := 0; i < 20; i++ {
		g, err := RandomDAG(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if v := g.NumTasks(); v < cfg.MinTasks || v > cfg.MaxTasks {
			t.Fatalf("v=%d outside [%d,%d]", v, cfg.MinTasks, cfg.MaxTasks)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		for _, e := range g.Edges() {
			if e.Volume < cfg.MinVolume || e.Volume >= cfg.MaxVolume {
				t.Fatalf("volume %g outside [%g,%g)", e.Volume, cfg.MinVolume, cfg.MaxVolume)
			}
		}
		// Every non-entry task has a predecessor (generator guarantee).
		levels, n, err := g.Levels()
		if err != nil {
			t.Fatal(err)
		}
		if n < 2 {
			t.Fatalf("degenerate layering: %d levels", n)
		}
		for tsk, l := range levels {
			if l > 0 && g.InDegree(dag.TaskID(tsk)) == 0 {
				t.Fatalf("task %d at level %d has no predecessor", tsk, l)
			}
		}
	}
}

func TestRandomDAGConfigValidation(t *testing.T) {
	bad := []RandomDAGConfig{
		{MinTasks: 0, MaxTasks: 5, ShapeFactor: 1},
		{MinTasks: 5, MaxTasks: 2, ShapeFactor: 1},
		{MinTasks: 2, MaxTasks: 5, MinVolume: -1, ShapeFactor: 1},
		{MinTasks: 2, MaxTasks: 5, MinVolume: 5, MaxVolume: 1, ShapeFactor: 1},
		{MinTasks: 2, MaxTasks: 5, ShapeFactor: 0},
		{MinTasks: 2, MaxTasks: 5, ShapeFactor: 1, EdgeDensity: 1.5},
	}
	rng := rand.New(rand.NewSource(1))
	for i, cfg := range bad {
		if _, err := RandomDAG(rng, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRandomDAGShapeFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultRandomDAGConfig()
	cfg.MinTasks, cfg.MaxTasks = 100, 100

	cfg.ShapeFactor = 0.3
	wide, err := RandomDAG(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ShapeFactor = 3.0
	deep, err := RandomDAG(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, wl, _ := wide.Levels()
	_, dl, _ := deep.Levels()
	if wl >= dl {
		t.Errorf("shape factor ineffective: wide has %d levels, deep %d", wl, dl)
	}
}

func TestErdosRenyiDAG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ErdosRenyiDAG(rng, 50, 0.1, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for tsk := 1; tsk < 50; tsk++ {
		if g.InDegree(dag.TaskID(tsk)) == 0 {
			t.Fatalf("task %d disconnected", tsk)
		}
	}
	if _, err := ErdosRenyiDAG(rng, 0, 0.5, 1, 2); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ErdosRenyiDAG(rng, 5, 1.5, 1, 2); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestFamilies(t *testing.T) {
	cases := []struct {
		name         string
		build        func() (*dag.Graph, error)
		tasks, edges int
	}{
		{"chain", func() (*dag.Graph, error) { return Chain(5, 1) }, 5, 4},
		{"independent", func() (*dag.Graph, error) { return Independent(6) }, 6, 0},
		{"forkjoin", func() (*dag.Graph, error) { return ForkJoin(3, 2, 1) }, 9, 12},
		{"outtree", func() (*dag.Graph, error) { return OutTree(2, 3, 1) }, 15, 14},
		{"intree", func() (*dag.Graph, error) { return InTree(2, 3, 1) }, 15, 14},
		{"gauss4", func() (*dag.Graph, error) { return GaussianElimination(4, 1) }, 9, 11},
		{"fft8", func() (*dag.Graph, error) { return FFT(3, 1) }, 32, 48},
		{"stencil", func() (*dag.Graph, error) { return Stencil(3, 4, 1) }, 12, 17},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if g.NumTasks() != tc.tasks {
				t.Errorf("tasks = %d, want %d", g.NumTasks(), tc.tasks)
			}
			if g.NumEdges() != tc.edges {
				t.Errorf("edges = %d, want %d", g.NumEdges(), tc.edges)
			}
		})
	}
}

func TestFamilyStructure(t *testing.T) {
	// Fork-join: exactly one entry and one exit.
	fj, err := ForkJoin(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fj.Entries()) != 1 || len(fj.Exits()) != 1 {
		t.Errorf("fork-join entries=%v exits=%v", fj.Entries(), fj.Exits())
	}
	w, err := fj.Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 4 {
		t.Errorf("fork-join width = %d, want 4", w)
	}
	// In-tree: one exit, 2^depth entries.
	it, err := InTree(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(it.Exits()) != 1 {
		t.Errorf("in-tree exits = %v", it.Exits())
	}
	if len(it.Entries()) != 8 {
		t.Errorf("in-tree entries = %d, want 8", len(it.Entries()))
	}
	// Stencil: single entry (0,0), single exit (rows-1,cols-1), width
	// min(rows,cols).
	st, err := Stencil(3, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := st.Width(); w != 3 {
		t.Errorf("stencil width = %d, want 3", w)
	}
	// Diamond helper.
	d := Diamond(7)
	if d.NumTasks() != 4 || d.NumEdges() != 4 {
		t.Errorf("diamond %v", d)
	}
}

func TestFamilyErrors(t *testing.T) {
	if _, err := Chain(0, 1); err == nil {
		t.Error("Chain(0) accepted")
	}
	if _, err := Independent(0); err == nil {
		t.Error("Independent(0) accepted")
	}
	if _, err := ForkJoin(0, 1, 1); err == nil {
		t.Error("ForkJoin width 0 accepted")
	}
	if _, err := OutTree(0, 1, 1); err == nil {
		t.Error("OutTree branching 0 accepted")
	}
	if _, err := GaussianElimination(1, 1); err == nil {
		t.Error("GaussianElimination(1) accepted")
	}
	if _, err := FFT(0, 1); err == nil {
		t.Error("FFT(0) accepted")
	}
	if _, err := Stencil(0, 3, 1); err == nil {
		t.Error("Stencil rows 0 accepted")
	}
}

func TestInstanceGranularityScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, target := range []float64{0.2, 0.6, 1.0, 1.4, 2.0} {
		inst, err := NewInstance(rng, DefaultPaperConfig(target))
		if err != nil {
			t.Fatal(err)
		}
		got, err := inst.Granularity()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-target) > 1e-9 {
			t.Errorf("granularity = %g, want %g", got, target)
		}
	}
}

func TestInstanceForGraphFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, err := GaussianElimination(6, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultPaperConfig(1.0)
	cfg.Procs = 8
	inst, err := NewInstanceForGraph(rng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Platform.NumProcs() != 8 {
		t.Errorf("procs = %d", inst.Platform.NumProcs())
	}
	if inst.Costs.NumTasks() != g.NumTasks() {
		t.Errorf("cost rows = %d, want %d", inst.Costs.NumTasks(), g.NumTasks())
	}
	gr, err := inst.Granularity()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gr-1.0) > 1e-9 {
		t.Errorf("granularity = %g", gr)
	}
}

func TestPaperConfigValidation(t *testing.T) {
	cfg := DefaultPaperConfig(1.0)
	cfg.Procs = 0
	if err := cfg.Validate(); err == nil {
		t.Error("0 processors accepted")
	}
	cfg = DefaultPaperConfig(1.0)
	cfg.MinDelay, cfg.MaxDelay = 2, 1
	if err := cfg.Validate(); err == nil {
		t.Error("inverted delay range accepted")
	}
	cfg = DefaultPaperConfig(-1)
	if err := cfg.Validate(); err == nil {
		t.Error("negative granularity accepted")
	}
	rng := rand.New(rand.NewSource(1))
	inst, err := NewInstance(rng, DefaultPaperConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ScaleToGranularity(0); err == nil {
		t.Error("zero target accepted")
	}
}

func TestPropGeneratedInstancesSchedulable(t *testing.T) {
	// Every generated instance is structurally sound: acyclic graph, full
	// cost coverage, positive granularity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultPaperConfig(1.0)
		cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 20, 40
		cfg.Procs = 6
		inst, err := NewInstance(rng, cfg)
		if err != nil {
			return false
		}
		if inst.Graph.Validate() != nil {
			return false
		}
		if inst.Costs.NumTasks() != inst.Graph.NumTasks() {
			return false
		}
		gr, err := platform.Granularity(inst.Graph, inst.Costs, inst.Platform)
		return err == nil && math.Abs(gr-1.0) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
