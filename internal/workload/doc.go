// Package workload generates the task graphs and platforms used by the
// paper's evaluation (Section 6) and by the examples: layered random DAGs
// with uniformly drawn message volumes, classic task-graph families
// (fork-join, trees, Gaussian elimination, FFT, stencil, Cholesky, LU,
// pipeline), and the granularity-scaling procedure that sweeps g(G,P) from
// 0.2 to 2.0.
//
// Instance is the package's unit of work — a (graph, platform, cost model)
// triple — and PaperConfig reproduces the paper's experimental defaults
// (100-150 tasks, delays in [0.5,1), unrelated-machines costs rescaled to a
// target granularity). Generation is fully driven by the caller's
// *rand.Rand, which is what lets the campaign engine derive deterministic
// per-cell instances from coordinate-hashed seeds.
package workload
