package workload

import (
	"fmt"

	"ftsched/internal/dag"
)

// The classic structured task-graph families used across the DAG-scheduling
// literature (and by the examples in this repository). Every constructor
// takes a uniform data volume per edge; callers wanting heterogeneous
// volumes can post-process with Graph.SetVolume.

// Chain returns a linear chain of n tasks.
func Chain(n int, volume float64) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: chain needs >=1 task, got %d", n)
	}
	g := dag.NewWithTasks(fmt.Sprintf("chain-%d", n), n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(dag.TaskID(i), dag.TaskID(i+1), volume)
	}
	return g, nil
}

// Independent returns n tasks with no edges (maximum parallelism).
func Independent(n int) (*dag.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("workload: need >=1 task, got %d", n)
	}
	return dag.NewWithTasks(fmt.Sprintf("independent-%d", n), n), nil
}

// ForkJoin returns a fork-join graph: one source task fanning out to width
// parallel tasks per stage, re-joining into a synchronization task between
// stages. Total tasks: 1 + stages*(width+1).
func ForkJoin(width, stages int, volume float64) (*dag.Graph, error) {
	if width < 1 || stages < 1 {
		return nil, fmt.Errorf("workload: fork-join needs width,stages >= 1, got %d,%d", width, stages)
	}
	g := dag.New(fmt.Sprintf("forkjoin-w%d-s%d", width, stages))
	src := g.AddTask()
	prev := src
	for s := 0; s < stages; s++ {
		join := dag.TaskID(-1)
		workers := make([]dag.TaskID, width)
		for w := 0; w < width; w++ {
			workers[w] = g.AddTask()
			g.MustAddEdge(prev, workers[w], volume)
		}
		join = g.AddTask()
		for _, w := range workers {
			g.MustAddEdge(w, join, volume)
		}
		prev = join
	}
	return g, nil
}

// OutTree returns a complete out-tree (fan-out tree) with the given branching
// factor and depth; depth 0 is a single root.
func OutTree(branching, depth int, volume float64) (*dag.Graph, error) {
	if branching < 1 || depth < 0 {
		return nil, fmt.Errorf("workload: out-tree needs branching>=1, depth>=0, got %d,%d", branching, depth)
	}
	g := dag.New(fmt.Sprintf("outtree-b%d-d%d", branching, depth))
	root := g.AddTask()
	frontier := []dag.TaskID{root}
	for d := 0; d < depth; d++ {
		var next []dag.TaskID
		for _, p := range frontier {
			for b := 0; b < branching; b++ {
				c := g.AddTask()
				g.MustAddEdge(p, c, volume)
				next = append(next, c)
			}
		}
		frontier = next
	}
	return g, nil
}

// InTree returns a complete in-tree (reduction tree): the mirror of OutTree,
// with all leaves feeding toward a single sink.
func InTree(branching, depth int, volume float64) (*dag.Graph, error) {
	out, err := OutTree(branching, depth, volume)
	if err != nil {
		return nil, err
	}
	g := dag.NewWithTasks(fmt.Sprintf("intree-b%d-d%d", branching, depth), out.NumTasks())
	n := out.NumTasks()
	// Reverse every edge and mirror IDs so the sink gets the largest ID.
	for _, e := range out.Edges() {
		g.MustAddEdge(dag.TaskID(n-1-int(e.Dst)), dag.TaskID(n-1-int(e.Src)), e.Volume)
	}
	return g, nil
}

// GaussianElimination returns the task graph of column-oriented Gaussian
// elimination on an n×n matrix: pivot tasks Tkk and update tasks Tkj
// (k < j ≤ n) with the classic dependence structure; ~n²/2 tasks.
func GaussianElimination(n int, volume float64) (*dag.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("workload: gaussian elimination needs n>=2, got %d", n)
	}
	g := dag.New(fmt.Sprintf("gauss-%d", n))
	// id[k][j] for 1<=k<j<=n plus pivots id[k][k].
	id := make(map[[2]int]dag.TaskID)
	for k := 1; k < n; k++ {
		id[[2]int{k, k}] = g.AddTask() // pivot step k
		for j := k + 1; j <= n; j++ {
			id[[2]int{k, j}] = g.AddTask() // update of column j at step k
		}
	}
	for k := 1; k < n; k++ {
		// Pivot k enables every update Tkj.
		for j := k + 1; j <= n; j++ {
			g.MustAddEdge(id[[2]int{k, k}], id[[2]int{k, j}], volume)
		}
		if k+1 < n {
			// Update Tk,k+1 produces the next pivot.
			g.MustAddEdge(id[[2]int{k, k + 1}], id[[2]int{k + 1, k + 1}], volume)
			// Update Tkj feeds update Tk+1,j.
			for j := k + 2; j <= n; j++ {
				g.MustAddEdge(id[[2]int{k, j}], id[[2]int{k + 1, j}], volume)
			}
		}
	}
	return g, nil
}

// FFT returns the task graph of a radix-2 FFT on 2^logN points: logN
// butterfly ranks of 2^logN tasks each, plus an input rank; every butterfly
// task depends on two tasks of the previous rank (the classic FFT DAG).
func FFT(logN int, volume float64) (*dag.Graph, error) {
	if logN < 1 || logN > 16 {
		return nil, fmt.Errorf("workload: fft needs 1<=logN<=16, got %d", logN)
	}
	n := 1 << logN
	g := dag.New(fmt.Sprintf("fft-%d", n))
	prev := make([]dag.TaskID, n)
	for i := 0; i < n; i++ {
		prev[i] = g.AddTask()
	}
	for stage := 0; stage < logN; stage++ {
		cur := make([]dag.TaskID, n)
		span := 1 << stage
		for i := 0; i < n; i++ {
			cur[i] = g.AddTask()
		}
		for i := 0; i < n; i++ {
			partner := i ^ span
			g.MustAddEdge(prev[i], cur[i], volume)
			g.MustAddEdge(prev[partner], cur[i], volume)
		}
		prev = cur
	}
	return g, nil
}

// Stencil returns the task graph of a 2-D wavefront (Laplace/Gauss-Seidel
// sweep) over a rows×cols grid: task (i,j) depends on (i−1,j) and (i,j−1).
func Stencil(rows, cols int, volume float64) (*dag.Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("workload: stencil needs rows,cols >= 1, got %d,%d", rows, cols)
	}
	g := dag.NewWithTasks(fmt.Sprintf("stencil-%dx%d", rows, cols), rows*cols)
	at := func(i, j int) dag.TaskID { return dag.TaskID(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if i > 0 {
				g.MustAddEdge(at(i-1, j), at(i, j), volume)
			}
			if j > 0 {
				g.MustAddEdge(at(i, j-1), at(i, j), volume)
			}
		}
	}
	return g, nil
}

// Diamond returns the 4-task diamond (1 source, 2 parallel, 1 sink); the
// smallest graph exercising both a fork and a join. Handy in unit tests.
func Diamond(volume float64) *dag.Graph {
	g := dag.NewWithTasks("diamond", 4)
	g.MustAddEdge(0, 1, volume)
	g.MustAddEdge(0, 2, volume)
	g.MustAddEdge(1, 3, volume)
	g.MustAddEdge(2, 3, volume)
	return g
}
