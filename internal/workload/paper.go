package workload

import (
	"fmt"
	"math/rand"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// Instance bundles one complete scheduling problem: a task graph, the
// platform it runs on and the execution-cost matrix. This is the unit the
// experiment harness generates 60 of per figure point.
type Instance struct {
	Graph    *dag.Graph
	Platform *platform.Platform
	Costs    *platform.CostModel
}

// PaperConfig gathers the generation parameters of Section 6 of the paper.
type PaperConfig struct {
	// DAG is the random-graph configuration (task count, volumes, shape).
	DAG RandomDAGConfig
	// Procs is the platform size (20 in Figures 1-3, 5 in Figure 4, 50 in
	// Table 1).
	Procs int
	// MinDelay and MaxDelay bound the uniformly drawn unit message delay of
	// the links; the paper uses [0.5, 1].
	MinDelay, MaxDelay float64
	// MinCost and MaxCost bound the uniformly drawn raw execution times
	// before granularity scaling. The paper does not state the raw range
	// (only the achieved granularity matters after scaling); [10, 100]
	// gives a 10x heterogeneity spread.
	MinCost, MaxCost float64
	// Granularity is the target g(G,P); the whole cost matrix is rescaled
	// so that the generated instance hits it exactly. Zero disables
	// scaling.
	Granularity float64
}

// DefaultPaperConfig returns the Figure 1-3 configuration with the given
// target granularity.
func DefaultPaperConfig(granularity float64) PaperConfig {
	return PaperConfig{
		DAG:         DefaultRandomDAGConfig(),
		Procs:       20,
		MinDelay:    0.5,
		MaxDelay:    1.0,
		MinCost:     10,
		MaxCost:     100,
		Granularity: granularity,
	}
}

// Validate checks the configuration.
func (c PaperConfig) Validate() error {
	if err := c.DAG.Validate(); err != nil {
		return err
	}
	if c.Procs < 1 {
		return fmt.Errorf("workload: need >=1 processor, got %d", c.Procs)
	}
	if c.MinDelay < 0 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("workload: invalid delay range [%g,%g]", c.MinDelay, c.MaxDelay)
	}
	if c.MinCost < 0 || c.MaxCost < c.MinCost {
		return fmt.Errorf("workload: invalid cost range [%g,%g]", c.MinCost, c.MaxCost)
	}
	if c.Granularity < 0 {
		return fmt.Errorf("workload: negative target granularity %g", c.Granularity)
	}
	return nil
}

// NewInstance draws one full problem instance per the configuration,
// rescaling execution costs to hit the target granularity when set.
func NewInstance(rng *rand.Rand, cfg PaperConfig) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := RandomDAG(rng, cfg.DAG)
	if err != nil {
		return nil, err
	}
	return instantiate(rng, g, cfg)
}

// NewInstanceForGraph builds platform and costs for an existing graph using
// the same parameters; used by the structured-family examples.
func NewInstanceForGraph(rng *rand.Rand, g *dag.Graph, cfg PaperConfig) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return instantiate(rng, g, cfg)
}

func instantiate(rng *rand.Rand, g *dag.Graph, cfg PaperConfig) (*Instance, error) {
	p, err := platform.NewRandom(rng, cfg.Procs, cfg.MinDelay, cfg.MaxDelay)
	if err != nil {
		return nil, err
	}
	cm, err := platform.NewRandomCostModel(rng, g.NumTasks(), cfg.Procs, cfg.MinCost, cfg.MaxCost)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Graph: g, Platform: p, Costs: cm}
	if cfg.Granularity > 0 && g.NumEdges() > 0 {
		if err := inst.ScaleToGranularity(cfg.Granularity); err != nil {
			return nil, err
		}
	}
	return inst, nil
}

// ScaleToGranularity rescales the execution-cost matrix so that
// g(G,P) equals the target exactly. Granularity is (Σ slowest computation) /
// (Σ slowest communication) and communications are untouched, so multiplying
// all costs by target/current is exact.
func (in *Instance) ScaleToGranularity(target float64) error {
	if target <= 0 {
		return fmt.Errorf("workload: target granularity must be positive, got %g", target)
	}
	cur, err := platform.Granularity(in.Graph, in.Costs, in.Platform)
	if err != nil {
		return err
	}
	if cur == 0 {
		return fmt.Errorf("workload: cannot scale zero-cost instance")
	}
	return in.Costs.Scale(target / cur)
}

// Granularity reports g(G,P) for the instance.
func (in *Instance) Granularity() (float64, error) {
	return platform.Granularity(in.Graph, in.Costs, in.Platform)
}
