package workload

import (
	"testing"

	"ftsched/internal/dag"
)

func TestCholeskyStructure(t *testing.T) {
	g, err := Cholesky(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Task count: Σ_k (1 + (n-1-k) + (n-1-k) + C(n-1-k,2)) for n=5: k=0:
	// 1+4+4+6=15; k=1: 1+3+3+3=10; k=2: 1+2+2+1=6; k=3: 1+1+1+0=3; k=4: 1.
	if g.NumTasks() != 35 {
		t.Errorf("tasks = %d, want 35", g.NumTasks())
	}
	// One entry (POTRF(0)), one exit (POTRF(n-1)).
	if got := len(g.Entries()); got != 1 {
		t.Errorf("entries = %d", got)
	}
	exits := g.Exits()
	if len(exits) != 1 {
		t.Errorf("exits = %v", exits)
	}
	// Depth grows linearly with n: each k level adds POTRF->TRSM->SYRK.
	_, levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if levels < 3*4 {
		t.Errorf("levels = %d, want >= 12", levels)
	}
}

func TestLUStructure(t *testing.T) {
	g, err := LU(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Task count: Σ_k (1 + 2(n-1-k) + (n-1-k)²) for n=4: k=0: 1+6+9=16;
	// k=1: 1+4+4=9; k=2: 1+2+1=4; k=3: 1. Total 30.
	if g.NumTasks() != 30 {
		t.Errorf("tasks = %d, want 30", g.NumTasks())
	}
	if got := len(g.Entries()); got != 1 {
		t.Errorf("entries = %d", got)
	}
	if got := len(g.Exits()); got != 1 {
		t.Errorf("exits = %d", got)
	}
}

func TestPipelineStructure(t *testing.T) {
	g, err := Pipeline(4, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumTasks() != 12 {
		t.Errorf("tasks = %d", g.NumTasks())
	}
	// Fully connected consecutive layers: 3 gaps × 9 edges.
	if g.NumEdges() != 27 {
		t.Errorf("edges = %d, want 27", g.NumEdges())
	}
	w, err := g.Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != 3 {
		t.Errorf("width = %d, want 3", w)
	}
	// Every stage-1 task is an entry; every last-stage task an exit.
	if len(g.Entries()) != 3 || len(g.Exits()) != 3 {
		t.Errorf("entries/exits %d/%d", len(g.Entries()), len(g.Exits()))
	}
}

func TestKernelErrors(t *testing.T) {
	if _, err := Cholesky(1, 1); err == nil {
		t.Error("Cholesky(1) accepted")
	}
	if _, err := LU(0, 1); err == nil {
		t.Error("LU(0) accepted")
	}
	if _, err := Pipeline(0, 3, 1); err == nil {
		t.Error("Pipeline(0) accepted")
	}
}

func TestKernelsHaveSingleCriticalChain(t *testing.T) {
	// Sanity: in both factorizations, the diagonal kernels form a chain,
	// so the graph's level count is at least n.
	for n := 3; n <= 6; n++ {
		ch, err := Cholesky(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, lc, err := ch.Levels()
		if err != nil {
			t.Fatal(err)
		}
		if lc < n {
			t.Errorf("cholesky(%d) levels %d < n", n, lc)
		}
		lu, err := LU(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, ll, err := lu.Levels()
		if err != nil {
			t.Fatal(err)
		}
		if ll < n {
			t.Errorf("lu(%d) levels %d < n", n, ll)
		}
	}
}

func TestKernelsAreSchedulableUnits(t *testing.T) {
	// The kernels integrate with the instance machinery.
	g, err := Cholesky(4, 50)
	if err != nil {
		t.Fatal(err)
	}
	for tsk := 0; tsk < g.NumTasks(); tsk++ {
		if g.InDegree(dag.TaskID(tsk)) == 0 && g.OutDegree(dag.TaskID(tsk)) == 0 {
			t.Errorf("isolated task %d", tsk)
		}
	}
}
