package mission

import (
	"math"
	"math/rand"
	"testing"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// TestReplanBottomLevelsExact pins the claim the incremental repair rides
// on: after a replan, the repaired full-graph bottom levels restricted to
// the surviving suffix are bit-for-bit what sched.AvgBottomLevels computes
// for the standalone sub-instance. (The suffix is successor-closed and the
// repaired costs use the sub-instance's exact operation order, so equality
// is exact, not approximate.)
func TestReplanBottomLevelsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = 6
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(Spec{
		Graph: inst.Graph, Platform: inst.Platform, Costs: inst.Costs,
		Scheduler: "mcftsa", Epsilon: 2, Seed: 5, Policy: PolicyReschedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash two processors mid-flight so the mission replans at least once.
	sc := sim.NoFailures(6)
	sc.CrashTime[0] = 0.3 * c.plan0.LowerBound()
	sc.CrashTime[3] = 0.6 * c.plan0.LowerBound()
	out, err := c.Run(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Replans == 0 {
		t.Fatal("scenario caused no replan; test exercises nothing")
	}

	// The controller's scratch still holds the last segment's sub-instance.
	// Rebuild it independently and compare bottom levels bit for bit.
	if len(c.subTasks) == 0 || len(c.subTasks) == c.f.NumTasks() {
		t.Fatalf("last segment has %d of %d tasks; want a strict suffix", len(c.subTasks), c.f.NumTasks())
	}
	subG := dag.NewWithTasks("check", len(c.subTasks))
	rows := make([][]float64, len(c.subTasks))
	for i, task := range c.subTasks {
		row := make([]float64, len(c.subProcs))
		for j, p := range c.subProcs {
			row[j] = inst.Costs.Cost(task, p)
		}
		rows[i] = row
		vols := c.f.SuccVolumes(task)
		for k, s := range c.f.SuccIDs(task) {
			subG.MustAddEdge(dag.TaskID(i), dag.TaskID(c.origToSub[s]), vols[k])
		}
	}
	subCM, err := platform.NewCostModelFromMatrix(rows)
	if err != nil {
		t.Fatal(err)
	}
	delays := make([][]float64, len(c.subProcs))
	for i, pi := range c.subProcs {
		drow := make([]float64, len(c.subProcs))
		for j, pj := range c.subProcs {
			drow[j] = inst.Platform.Delay(pi, pj)
		}
		delays[i] = drow
	}
	subP, err := platform.NewFromDelays(delays)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sched.AvgBottomLevels(subG, subCM, subP)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := c.subBL[i]; got != want[i] || math.IsNaN(got) {
			t.Fatalf("sub task %d (orig %d): repaired bl %v, from-scratch %v", i, c.subTasks[i], got, want[i])
		}
	}
	if out.BLTouched == 0 {
		t.Fatal("BLTouched = 0 across a replanning mission; repair reported no work")
	}
}

// TestRngSeg0MatchesSchedule pins the seeding identity that makes a
// static-policy mission agree with the serving layer's /schedule: segment 0
// draws from rand.NewSource(Seed) directly, not from a derived stream.
func TestRngSeg0MatchesSchedule(t *testing.T) {
	c := &Controller{spec: Spec{Seed: 1234}}
	got := c.rngFor(0).Int63()
	want := rand.New(rand.NewSource(1234)).Int63()
	if got != want {
		t.Fatalf("segment-0 rng draw %d, want %d (rand.NewSource(Seed))", got, want)
	}
	if c.rngFor(1).Int63() == want {
		t.Fatal("segment-1 rng must derive a distinct stream")
	}
}
