package mission

import (
	"bytes"
	"encoding/json"
)

// Event kinds, in the order they can appear in a log: a plan (or replan)
// opens each segment, task completions and crashes interleave by virtual
// time, and exactly one complete/abort closes the log.
const (
	EventPlan     = "plan"
	EventReplan   = "replan"
	EventTask     = "task"
	EventCrash    = "crash"
	EventComplete = "complete"
	EventAbort    = "abort"
)

// evPlan opens a segment: the controller committed to a schedule at virtual
// time T. Kind is "plan" for segment 0 and "replan" afterwards. Lower/Upper
// are the segment plan's bounds shifted to absolute time; BLTouched counts
// the bottom-level entries the incremental repair recomputed for this
// replan (0 on the initial plan).
type evPlan struct {
	Seq       int     `json:"seq"`
	T         float64 `json:"t"`
	Kind      string  `json:"kind"`
	Scheduler string  `json:"scheduler"`
	Epsilon   int     `json:"epsilon"`
	Tasks     int     `json:"tasks"`
	Procs     int     `json:"procs"`
	Lower     float64 `json:"lower"`
	Upper     float64 `json:"upper"`
	BLTouched int     `json:"bl_touched,omitempty"`
}

// evTask records a task's earliest completed replica finishing (emitted only
// when Spec.TaskEvents is set — V events per mission is too chatty for the
// evaluator's inner loop).
type evTask struct {
	Seq  int     `json:"seq"`
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	Task int     `json:"task"`
}

// evCrash records an observed processor failure.
type evCrash struct {
	Seq  int     `json:"seq"`
	T    float64 `json:"t"`
	Kind string  `json:"kind"`
	Proc int     `json:"proc"`
}

// evEnd closes the log: "complete" with the mission latency, or "abort"
// with a reason. Crashes/Replans echo the final counters so the last line
// alone summarizes the mission.
type evEnd struct {
	Seq     int     `json:"seq"`
	T       float64 `json:"t"`
	Kind    string  `json:"kind"`
	Success bool    `json:"success"`
	Latency float64 `json:"latency"`
	Crashes int     `json:"crashes"`
	Replans int     `json:"replans"`
	Reason  string  `json:"reason,omitempty"`
}

// eventWriter emits canonical compact JSON lines (one per event) through a
// caller-supplied sink, assigning sequence numbers. A nil sink still counts
// events, which is what lets the batch evaluator run missions without
// materializing logs. Errors are sticky and surfaced once by err().
type eventWriter struct {
	seq  int
	emit func(line []byte)
	buf  bytes.Buffer
	enc  *json.Encoder
	fail error
}

func newEventWriter(emit func(line []byte)) *eventWriter {
	w := &eventWriter{emit: emit}
	w.enc = json.NewEncoder(&w.buf)
	w.enc.SetEscapeHTML(false)
	return w
}

// write assigns the next sequence number to the event and emits it. The
// caller passes a pointer so write can stamp the Seq field uniformly.
func (w *eventWriter) write(seq *int, v any) {
	*seq = w.seq
	w.seq++
	if w.emit == nil || w.fail != nil {
		return
	}
	w.buf.Reset()
	if err := w.enc.Encode(v); err != nil {
		w.fail = err
		return
	}
	// Encode appends a trailing newline; the sink owns line framing.
	line := make([]byte, w.buf.Len()-1)
	copy(line, w.buf.Bytes())
	w.emit(line)
}

func (w *eventWriter) plan(e evPlan) { w.write(&e.Seq, &e) }
func (w *eventWriter) task(t float64, task int) {
	e := evTask{T: t, Kind: EventTask, Task: task}
	w.write(&e.Seq, &e)
}
func (w *eventWriter) crash(t float64, proc int) {
	e := evCrash{T: t, Kind: EventCrash, Proc: proc}
	w.write(&e.Seq, &e)
}
func (w *eventWriter) end(t float64, success bool, latency float64, crashes, replans int, reason string) {
	kind := EventComplete
	if !success {
		kind = EventAbort
	}
	e := evEnd{T: t, Kind: kind, Success: success, Latency: latency, Crashes: crashes, Replans: replans, Reason: reason}
	w.write(&e.Seq, &e)
}

func (w *eventWriter) err() error { return w.fail }
