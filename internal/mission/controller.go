package mission

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/kernel"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
)

// Policy selects how a mission reacts to observed failures.
type Policy string

const (
	// PolicyStatic commits to the initial schedule and rides out failures
	// on its replication alone — the paper's offline model, executed online.
	PolicyStatic Policy = "static"
	// PolicyReschedule re-plans the surviving suffix of the DAG on the
	// surviving processors after every observed crash.
	PolicyReschedule Policy = "reschedule"
)

// ParsePolicy maps the wire spelling to a Policy; empty selects
// PolicyReschedule (the policy that makes a mission more than a replay).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", string(PolicyReschedule):
		return PolicyReschedule, nil
	case string(PolicyStatic):
		return PolicyStatic, nil
	}
	return "", fmt.Errorf("mission: unknown policy %q (want %q or %q)", s, PolicyStatic, PolicyReschedule)
}

// Spec is the immutable description of a mission: the problem instance, the
// scheduler configuration the serving layer would hand /schedule, and the
// reaction policy. The outcome is a pure function of (Spec, Scenario).
type Spec struct {
	Graph    *dag.Graph
	Platform *platform.Platform
	Costs    *platform.CostModel
	// Scheduler is the registry name; Epsilon and SchedPolicy mirror
	// RunOptions.
	Epsilon     int
	Scheduler   string
	SchedPolicy string
	// Seed seeds scheduler tie-breaking: segment 0 uses Seed directly
	// (matching the serving layer's /schedule), segment k uses
	// sim.TrialSeed(Seed, k). Zero keeps tie-breaking deterministic by ID.
	Seed int64
	// Policy defaults to PolicyReschedule when empty.
	Policy Policy
	// BottomLevels optionally supplies the instance's precomputed
	// sched.AvgBottomLevels (the serving layer shares its per-instance
	// memo); nil computes them.
	BottomLevels []float64
	// TaskEvents adds one event per task completion to the log. Off by
	// default: the batch evaluator runs thousands of missions and only the
	// API's event log wants V extra lines.
	TaskEvents bool
}

// Outcome is a mission's final report.
type Outcome struct {
	Success bool    `json:"success"`
	Latency float64 `json:"latency"`
	// Crashes counts failures observed before the mission ended; Replans
	// counts re-scheduling rounds (PolicyStatic always reports 0).
	Crashes int `json:"crashes"`
	Replans int `json:"replans"`
	// BLTouched totals the bottom-level entries the incremental repair
	// recomputed across all replans — the work a full O(V+E) recompute per
	// event would have multiplied.
	BLTouched int `json:"bl_touched"`
	// Events is the total event count (independent of whether a sink was
	// attached).
	Events int    `json:"events"`
	Reason string `json:"reason,omitempty"`
}

// pendEv is one not-yet-emitted observation; segments buffer and sort them
// so the log order is (time, kind, ID)-deterministic. Tasks sort before
// crashes at equal time: a replica finishing exactly at a crash instant
// completed (replay kills only end > crash).
type pendEv struct {
	t    float64
	rank int // 0 task, 1 crash
	id   int
}

// Controller runs missions for one Spec. It caches the initial plan and the
// frozen-graph cost state, so one controller amortizes NewController's
// scheduling run across many scenarios. Not safe for concurrent use; the
// batch evaluator binds one per worker.
type Controller struct {
	spec Spec
	f    *dag.Flat
	m    int

	// Immutable per-spec state: the segment-0 plan and the full graph's
	// average costs and bottom levels on the full platform.
	plan0   *sched.Schedule
	node0   []float64
	edge0   []float64
	bl0     []float64
	updater *dag.BottomLevelUpdater

	// Per-run scratch, reset by Run.
	node       []float64
	edge       []float64
	bl         []float64
	alive      []bool
	completed  []bool
	completeAt []float64
	finishes   []float64
	relCrash   []float64
	subTasks   []dag.TaskID
	subProcs   []platform.ProcID
	origToSub  []int32
	subBL      []float64
	dirty      []dag.TaskID
	pend       []pendEv
}

// NewController validates the spec and computes the segment-0 schedule.
func NewController(spec Spec) (*Controller, error) {
	if spec.Graph == nil || spec.Platform == nil || spec.Costs == nil {
		return nil, errors.New("mission: spec needs a graph, a platform and a cost model")
	}
	if spec.Policy == "" {
		spec.Policy = PolicyReschedule
	}
	if spec.Policy != PolicyStatic && spec.Policy != PolicyReschedule {
		return nil, fmt.Errorf("mission: unknown policy %q", spec.Policy)
	}
	f, err := spec.Graph.Freeze()
	if err != nil {
		return nil, err
	}
	node, edge := sched.AvgCosts(f, spec.Costs, spec.Platform)
	bl := spec.BottomLevels
	if bl == nil {
		bl = f.BottomLevels(node, edge, nil)
	} else if len(bl) != f.NumTasks() {
		return nil, fmt.Errorf("mission: %d bottom levels for %d tasks", len(bl), f.NumTasks())
	}
	c := &Controller{
		spec:    spec,
		f:       f,
		m:       spec.Platform.NumProcs(),
		node0:   node,
		edge0:   edge,
		bl0:     bl,
		updater: f.NewBottomLevelUpdater(),
	}
	c.plan0, err = sched.Run(spec.Scheduler, spec.Graph, spec.Platform, spec.Costs, sched.RunOptions{
		Epsilon:      spec.Epsilon,
		Rng:          c.rngFor(0),
		BottomLevels: bl,
		Policy:       spec.SchedPolicy,
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// InitialPlan returns the segment-0 schedule (shared; read-only).
func (c *Controller) InitialPlan() *sched.Schedule { return c.plan0 }

// Policy returns the spec's resolved policy.
func (c *Controller) Policy() Policy { return c.spec.Policy }

// rngFor returns the tie-breaking stream for one segment's scheduling run.
// Segment 0 must match what the serving layer does for a plain /schedule
// with the same seed — that identity is what makes a static-policy mission
// and the offline pipeline agree bit for bit.
func (c *Controller) rngFor(seg int) *rand.Rand {
	if c.spec.Seed == 0 {
		return nil
	}
	if seg == 0 {
		return rand.New(rand.NewSource(c.spec.Seed))
	}
	return rand.New(rand.NewSource(sim.TrialSeed(c.spec.Seed, seg)))
}

// Run executes one mission under the failure scenario, streaming events to
// emit (nil: count only). err is reserved for structural problems — an
// aborted mission is a report (Success false, Reason set), not an error.
func (c *Controller) Run(sc sim.Scenario, emit func(line []byte)) (Outcome, error) {
	if len(sc.CrashTime) != c.m {
		return Outcome{}, fmt.Errorf("mission: scenario covers %d processors, platform has %d", len(sc.CrashTime), c.m)
	}
	w := newEventWriter(emit)
	var out Outcome
	var err error
	if c.spec.Policy == PolicyStatic {
		out, err = c.runStatic(sc, w)
	} else {
		out, err = c.runReschedule(sc, w)
	}
	if err == nil {
		err = w.err()
	}
	if err != nil {
		return Outcome{}, err
	}
	out.Events = w.seq
	return out, nil
}

// runStatic replays the initial plan once; crashes are logged but nothing
// reacts to them. Semantics (and therefore success/latency) are exactly
// sim.Evaluate's, pinned by test.
func (c *Controller) runStatic(sc sim.Scenario, w *eventWriter) (Outcome, error) {
	fin, lat, ok, err := sim.ReplayTaskFinishes(c.plan0, sc, sim.Options{}, c.finishes)
	c.finishes = fin
	if err != nil {
		return Outcome{}, err
	}
	w.plan(evPlan{
		T: 0, Kind: EventPlan, Scheduler: c.plan0.Algorithm, Epsilon: c.plan0.Epsilon,
		Tasks: c.f.NumTasks(), Procs: c.m, Lower: c.plan0.LowerBound(), Upper: c.plan0.UpperBound(),
	})
	// The mission ends at the makespan on success, or after the last
	// observable event on failure. A crash at exactly the end instant kills
	// nothing (replay kills only end > crash), so it is not observed.
	end := lat
	if !ok {
		end = math.Inf(1)
	}
	tEnd := 0.0
	c.pend = c.pend[:0]
	if c.spec.TaskEvents {
		for t, f := range fin {
			if !math.IsInf(f, 1) {
				c.pend = append(c.pend, pendEv{t: f, rank: 0, id: t})
			}
		}
	}
	crashes := 0
	for p, crash := range sc.CrashTime {
		if crash < end {
			c.pend = append(c.pend, pendEv{t: crash, rank: 1, id: p})
			crashes++
		}
	}
	for _, e := range c.pend {
		if e.t > tEnd {
			tEnd = e.t
		}
	}
	c.flushPend(w)
	if ok {
		w.end(lat, true, lat, crashes, 0, "")
		return Outcome{Success: true, Latency: lat, Crashes: crashes}, nil
	}
	w.end(tEnd, false, 0, crashes, 0, reasonNotSurvived)
	return Outcome{Success: false, Crashes: crashes, Reason: reasonNotSurvived}, nil
}

const reasonNotSurvived = "schedule did not survive the failure scenario"

// runReschedule runs the segment loop: replay the current plan, stop the
// world at the earliest crash among the segment's processors, bank what
// completed, and re-plan the suffix on the survivors.
func (c *Controller) runReschedule(sc sim.Scenario, w *eventWriter) (Outcome, error) {
	v := c.f.NumTasks()
	c.node = append(c.node[:0], c.node0...)
	c.edge = append(c.edge[:0], c.edge0...)
	c.bl = append(c.bl[:0], c.bl0...)
	c.alive = kernel.Grow(c.alive, c.m)
	for i := range c.alive {
		c.alive[i] = true
	}
	aliveCount := c.m
	c.completed = kernel.GrowZero(c.completed, v)
	c.completeAt = kernel.Grow(c.completeAt, v)
	for i := range c.completeAt {
		c.completeAt[i] = math.Inf(1)
	}
	remaining := v

	// Segment 0 is the identity sub-instance: the full graph on the full
	// platform under the cached initial plan.
	c.subTasks = kernel.Grow(c.subTasks, v)
	for t := range c.subTasks {
		c.subTasks[t] = dag.TaskID(t)
	}
	c.subProcs = kernel.Grow(c.subProcs, c.m)
	for p := range c.subProcs {
		c.subProcs[p] = platform.ProcID(p)
	}
	plan := c.plan0
	T := 0.0
	var crashes, replans, touched, segTouched int

	for seg := 0; ; seg++ {
		kind := EventPlan
		if seg > 0 {
			kind = EventReplan
		}
		w.plan(evPlan{
			T: T, Kind: kind, Scheduler: plan.Algorithm, Epsilon: plan.Epsilon,
			Tasks: len(c.subTasks), Procs: len(c.subProcs),
			Lower: T + plan.LowerBound(), Upper: T + plan.UpperBound(),
			BLTouched: segTouched,
		})

		// Replay the segment in its own clock: crash times shift by -T.
		// Segment procs always satisfy crash > T (or seg 0, where crash 0
		// means dead from the start — replay's convention too).
		c.relCrash = kernel.Grow(c.relCrash, len(c.subProcs))
		for i, p := range c.subProcs {
			if cr := sc.CrashTime[p]; math.IsInf(cr, 1) {
				c.relCrash[i] = cr
			} else {
				c.relCrash[i] = cr - T
			}
		}
		fin, segLat, ok, err := sim.ReplayTaskFinishes(plan, sim.Scenario{CrashTime: c.relCrash}, sim.Options{}, c.finishes)
		c.finishes = fin
		if err != nil {
			return Outcome{}, err
		}

		// The next observation instant: the earliest crash among this
		// segment's processors (earlier crashes were consumed by previous
		// segments).
		cNext := math.Inf(1)
		for _, p := range c.subProcs {
			if cr := sc.CrashTime[p]; cr < cNext {
				cNext = cr
			}
		}

		if ok && T+segLat <= cNext {
			// The segment delivers every remaining task before the next
			// failure: mission complete.
			c.pend = c.pend[:0]
			for i, f := range fin[:len(c.subTasks)] {
				if t := c.subTasks[i]; !math.IsInf(f, 1) && !c.completed[t] {
					c.completed[t] = true
					c.completeAt[t] = T + f
					remaining--
					if c.spec.TaskEvents {
						c.pend = append(c.pend, pendEv{t: T + f, rank: 0, id: int(t)})
					}
				}
			}
			c.flushPend(w)
			lat := T + segLat
			w.end(lat, true, lat, crashes, replans, "")
			return Outcome{Success: true, Latency: lat, Crashes: crashes, Replans: replans, BLTouched: touched}, nil
		}
		if math.IsInf(cNext, 1) {
			// No further failure will arrive, yet the plan starved. With
			// every segment processor alive past the horizon this cannot
			// happen for a valid plan; defend rather than spin.
			w.end(T, false, 0, crashes, replans, reasonStarved)
			return Outcome{Success: false, Crashes: crashes, Replans: replans, BLTouched: touched, Reason: reasonStarved}, nil
		}

		// Stop the world at cNext: bank completions up to and including the
		// crash instant (a replica finishing exactly then completed), lose
		// in-flight work, observe the crash(es).
		c.pend = c.pend[:0]
		for i, f := range fin[:len(c.subTasks)] {
			if math.IsInf(f, 1) {
				continue
			}
			af := T + f
			if af > cNext {
				continue
			}
			t := c.subTasks[i]
			if c.completed[t] {
				continue
			}
			c.completed[t] = true
			c.completeAt[t] = af
			remaining--
			if c.spec.TaskEvents {
				c.pend = append(c.pend, pendEv{t: af, rank: 0, id: int(t)})
			}
		}
		for _, p := range c.subProcs {
			if sc.CrashTime[p] == cNext {
				c.pend = append(c.pend, pendEv{t: cNext, rank: 1, id: int(p)})
				c.alive[p] = false
				aliveCount--
				crashes++
			}
		}
		c.flushPend(w)

		if remaining == 0 {
			// Everything was already banked by the crash instant. (A
			// complete delivery also satisfies the success branch above, so
			// this is defensive.)
			lat := 0.0
			for _, at := range c.completeAt {
				if at > lat {
					lat = at
				}
			}
			w.end(lat, true, lat, crashes, replans, "")
			return Outcome{Success: true, Latency: lat, Crashes: crashes, Replans: replans, BLTouched: touched}, nil
		}
		if aliveCount == 0 {
			w.end(cNext, false, 0, crashes, replans, reasonAllDead)
			return Outcome{Success: false, Crashes: crashes, Replans: replans, BLTouched: touched, Reason: reasonAllDead}, nil
		}

		T = cNext
		replans++
		var rerr error
		plan, segTouched, rerr = c.replan(seg + 1)
		if rerr != nil {
			reason := "re-scheduling failed: " + rerr.Error()
			w.end(T, false, 0, crashes, replans, reason)
			return Outcome{Success: false, Crashes: crashes, Replans: replans, BLTouched: touched, Reason: reason}, nil
		}
		touched += segTouched
	}
}

const (
	reasonStarved = "segment starved with no further failures"
	reasonAllDead = "all processors failed"
)

// replan rebuilds the surviving suffix as a standalone sub-instance and
// schedules it. The incremental bottom-level repair marks dirty only the
// tasks whose survivor-average node or edge costs changed, so uniform
// platforms repair almost nothing; the repaired levels restricted to the
// suffix equal sched.AvgBottomLevels of the sub-instance bit for bit
// (pinned by TestReplanBottomLevelsExact).
func (c *Controller) replan(seg int) (*sched.Schedule, int, error) {
	v := c.f.NumTasks()
	c.subProcs = c.subProcs[:0]
	for p := 0; p < c.m; p++ {
		if c.alive[p] {
			c.subProcs = append(c.subProcs, platform.ProcID(p))
		}
	}
	alive := len(c.subProcs)
	delays := make([][]float64, alive)
	for i, pi := range c.subProcs {
		row := make([]float64, alive)
		for j, pj := range c.subProcs {
			row[j] = c.spec.Platform.Delay(pi, pj)
		}
		delays[i] = row
	}
	subP, err := platform.NewFromDelays(delays)
	if err != nil {
		return nil, 0, err
	}
	meanD := subP.MeanDelay()

	c.subTasks = c.subTasks[:0]
	c.origToSub = kernel.Grow(c.origToSub, v)
	for t := 0; t < v; t++ {
		if c.completed[t] {
			c.origToSub[t] = -1
		} else {
			c.origToSub[t] = int32(len(c.subTasks))
			c.subTasks = append(c.subTasks, dag.TaskID(t))
		}
	}

	// Repair the full graph's average costs for the survivor platform. The
	// node mean sums costs in ascending survivor order — the exact operation
	// order CostModel.Mean applies to the sub-instance's rows — so equal
	// values stay bit-equal and the dirty set stays minimal.
	c.dirty = c.dirty[:0]
	for _, t := range c.subTasks {
		changed := false
		sum := 0.0
		for _, p := range c.subProcs {
			sum += c.spec.Costs.Cost(t, p)
		}
		if nn := sum / float64(alive); nn != c.node[t] {
			c.node[t] = nn
			changed = true
		}
		lo := int(c.f.SuccEdgeLo(t))
		for k, vol := range c.f.SuccVolumes(t) {
			if ne := vol * meanD; ne != c.edge[lo+k] {
				c.edge[lo+k] = ne
				changed = true
			}
		}
		if changed {
			c.dirty = append(c.dirty, t)
		}
	}
	segTouched := c.updater.Update(c.bl, c.node, c.edge, c.dirty)

	// Dense sub-instance: surviving tasks renumbered in ascending original
	// order, costs restricted to survivors. The suffix is successor-closed
	// (a completed task's predecessors completed earlier), so every
	// successor edge stays inside it.
	subG := dag.NewWithTasks(fmt.Sprintf("%s+seg%d", c.spec.Graph.Name(), seg), len(c.subTasks))
	costRows := make([][]float64, len(c.subTasks))
	c.subBL = kernel.Grow(c.subBL, len(c.subTasks))
	for i, t := range c.subTasks {
		row := make([]float64, alive)
		for j, p := range c.subProcs {
			row[j] = c.spec.Costs.Cost(t, p)
		}
		costRows[i] = row
		c.subBL[i] = c.bl[t]
		vols := c.f.SuccVolumes(t)
		for k, sRaw := range c.f.SuccIDs(t) {
			st := c.origToSub[sRaw]
			if st < 0 {
				return nil, 0, fmt.Errorf("mission: completed task %d is a successor of remaining task %d", sRaw, t)
			}
			if err := subG.AddEdge(dag.TaskID(i), dag.TaskID(st), vols[k]); err != nil {
				return nil, 0, err
			}
		}
	}
	subCM, err := platform.NewCostModelFromMatrix(costRows)
	if err != nil {
		return nil, 0, err
	}
	eps := c.spec.Epsilon
	if eps > alive-1 {
		eps = alive - 1
	}
	plan, err := sched.Run(c.spec.Scheduler, subG, subP, subCM, sched.RunOptions{
		Epsilon:      eps,
		Rng:          c.rngFor(seg),
		BottomLevels: c.subBL,
		Policy:       c.spec.SchedPolicy,
	})
	if err != nil {
		return nil, 0, err
	}
	return plan, segTouched, nil
}

// flushPend emits the buffered observations in (time, kind, ID) order —
// the total order that makes logs byte-identical across runs.
func (c *Controller) flushPend(w *eventWriter) {
	sort.Slice(c.pend, func(i, j int) bool {
		a, b := c.pend[i], c.pend[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		return a.id < b.id
	})
	for _, e := range c.pend {
		if e.rank == 0 {
			w.task(e.t, e.id)
		} else {
			w.crash(e.t, e.id)
		}
	}
}
