package mission_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"ftsched/internal/mission"
	_ "ftsched/internal/schedulers"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

func missionSpec(t testing.TB, procs, eps int, policy mission.Policy) mission.Spec {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 40
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mission.Spec{
		Graph: inst.Graph, Platform: inst.Platform, Costs: inst.Costs,
		Scheduler: "mcftsa", Epsilon: eps, Seed: 7, Policy: policy, TaskEvents: true,
	}
}

func collectLog(t testing.TB, c *mission.Controller, sc sim.Scenario) ([]byte, mission.Outcome) {
	t.Helper()
	var log bytes.Buffer
	out, err := c.Run(sc, func(line []byte) {
		log.Write(line)
		log.WriteByte('\n')
	})
	if err != nil {
		t.Fatal(err)
	}
	return log.Bytes(), out
}

// crashScenario crashes n processors at evenly staggered fractions of the
// initial plan's lower bound, guaranteeing mid-flight failures.
func crashScenario(c *mission.Controller, m, n int) sim.Scenario {
	sc := sim.NoFailures(m)
	lb := c.InitialPlan().LowerBound()
	for i := 0; i < n; i++ {
		sc.CrashTime[(i*3)%m] = lb * (0.2 + 0.5*float64(i)/float64(n))
	}
	return sc
}

// The tentpole contract: same spec + scenario, byte-identical event log and
// final report — across runs of one controller and across fresh controllers.
func TestMissionLogDeterministic(t *testing.T) {
	for _, policy := range []mission.Policy{mission.PolicyStatic, mission.PolicyReschedule} {
		t.Run(string(policy), func(t *testing.T) {
			spec := missionSpec(t, 6, 2, policy)
			c1, err := mission.NewController(spec)
			if err != nil {
				t.Fatal(err)
			}
			sc := crashScenario(c1, 6, 2)
			log1, out1 := collectLog(t, c1, sc)
			log2, out2 := collectLog(t, c1, sc) // same controller, reused scratch
			c3, err := mission.NewController(spec)
			if err != nil {
				t.Fatal(err)
			}
			log3, out3 := collectLog(t, c3, sc) // fresh controller
			if !bytes.Equal(log1, log2) || !bytes.Equal(log1, log3) {
				t.Fatalf("event logs differ across runs:\n%s\nvs\n%s\nvs\n%s", log1, log2, log3)
			}
			if out1 != out2 || out1 != out3 {
				t.Fatalf("outcomes differ: %+v vs %+v vs %+v", out1, out2, out3)
			}
		})
	}
}

// Event logs must be well-formed JSONL: dense sequence numbers, a plan
// first, exactly one terminal event last, counts matching the outcome.
func TestMissionLogWellFormed(t *testing.T) {
	spec := missionSpec(t, 6, 1, mission.PolicyReschedule)
	c, err := mission.NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	log, out := collectLog(t, c, crashScenario(c, 6, 2))
	lines := bytes.Split(bytes.TrimSuffix(log, []byte("\n")), []byte("\n"))
	if len(lines) != out.Events {
		t.Fatalf("log has %d lines, outcome reports %d events", len(lines), out.Events)
	}
	terminal := 0
	var prevT float64
	for i, line := range lines {
		var ev struct {
			Seq  int     `json:"seq"`
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if ev.Seq != i {
			t.Fatalf("line %d has seq %d", i, ev.Seq)
		}
		if ev.T < 0 {
			t.Fatalf("line %d has negative time %v", i, ev.T)
		}
		switch ev.Kind {
		case mission.EventComplete, mission.EventAbort:
			terminal++
			if i != len(lines)-1 {
				t.Fatalf("terminal event at line %d of %d", i, len(lines))
			}
		case mission.EventPlan:
			if i != 0 {
				t.Fatalf("plan event at line %d; want 0", i)
			}
		case mission.EventReplan, mission.EventTask, mission.EventCrash:
		default:
			t.Fatalf("line %d: unknown kind %q", i, ev.Kind)
		}
		_ = prevT
		prevT = ev.T
	}
	if terminal != 1 {
		t.Fatalf("log has %d terminal events, want 1", terminal)
	}
	if out.Replans == 0 || out.Crashes == 0 {
		t.Fatalf("scenario exercised nothing: %+v", out)
	}
}

// A static-policy mission is a replay: EvaluatePolicy(static) must be
// bit-identical to sim.Evaluate of the initial plan.
func TestEvaluatePolicyStaticMatchesEvaluate(t *testing.T) {
	spec := missionSpec(t, 6, 2, mission.PolicyStatic)
	c, err := mission.NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	gen := sim.UniformGen{N: 2}
	want, err := sim.Evaluate(c.InitialPlan(), gen, 250, sim.EvalOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	got, err := mission.EvaluatePolicy(spec, gen, 250, sim.EvalOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("static policy diverges from sim.Evaluate:\n%s\nvs\n%s", gb, wb)
	}
}

// EvaluatePolicy must be worker-count independent, like sim.Evaluate.
func TestEvaluatePolicyDeterministicAcrossWorkers(t *testing.T) {
	spec := missionSpec(t, 6, 1, mission.PolicyReschedule)
	gen := sim.ExponentialGen{Lambda: 0.02}
	var want []byte
	for _, workers := range []int{1, 4} {
		res, err := mission.EvaluatePolicy(spec, gen, 200, sim.EvalOptions{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		blob, _ := json.Marshal(res)
		if want == nil {
			want = blob
		} else if !bytes.Equal(blob, want) {
			t.Fatalf("workers=%d result differs:\n%s\nvs\n%s", workers, blob, want)
		}
	}
}

// The policy comparison the tentpole exists for: on identical failure
// draws, re-scheduling must not lose to riding out the failures statically.
// Pinned for two scenario kinds (the acceptance criterion's floor).
func TestReschedulePolicyBeatsStatic(t *testing.T) {
	static := missionSpec(t, 6, 1, mission.PolicyStatic)
	resched := static
	resched.Policy = mission.PolicyReschedule
	for _, gen := range []sim.ScenarioGenerator{
		sim.UniformGen{N: 3},
		sim.ExponentialGen{Lambda: 0.05},
	} {
		t.Run(gen.Spec().Kind, func(t *testing.T) {
			opt := sim.EvalOptions{Seed: 17}
			rs, err := mission.EvaluatePolicy(static, gen, 300, opt)
			if err != nil {
				t.Fatal(err)
			}
			rr, err := mission.EvaluatePolicy(resched, gen, 300, opt)
			if err != nil {
				t.Fatal(err)
			}
			if rr.SuccessRate < rs.SuccessRate {
				t.Fatalf("re-scheduling success %.3f < static %.3f", rr.SuccessRate, rs.SuccessRate)
			}
			if rr.SuccessRate == rs.SuccessRate && rs.SuccessRate == 1 {
				t.Skipf("scenario too gentle to separate policies (both 1.0)")
			}
		})
	}
}

// A single crash with ε=0 (heft, no replication) kills a static mission but
// a re-scheduling one recovers — the qualitative claim in one scenario.
func TestRescheduleRecoversUnreplicatedCrash(t *testing.T) {
	spec := missionSpec(t, 4, 0, mission.PolicyStatic)
	spec.Scheduler = "heft"
	c, err := mission.NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NoFailures(4)
	sc.CrashTime[0] = 0.3 * c.InitialPlan().LowerBound()
	_, outStatic := collectLog(t, c, sc)
	if outStatic.Success {
		t.Skip("crash did not hit the static plan; pick a different instance")
	}
	spec.Policy = mission.PolicyReschedule
	cr, err := mission.NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, outRe := collectLog(t, cr, sc)
	if !outRe.Success {
		t.Fatalf("re-scheduling mission failed too: %+v", outRe)
	}
	if outRe.Replans == 0 || outRe.Crashes != 1 {
		t.Fatalf("expected one crash and at least one replan: %+v", outRe)
	}
}

// No failures: both policies complete with the replay latency of the
// initial plan and an empty crash log.
func TestMissionNoFailures(t *testing.T) {
	for _, policy := range []mission.Policy{mission.PolicyStatic, mission.PolicyReschedule} {
		spec := missionSpec(t, 6, 1, policy)
		c, err := mission.NewController(spec)
		if err != nil {
			t.Fatal(err)
		}
		_, out := collectLog(t, c, sim.NoFailures(6))
		if !out.Success || out.Crashes != 0 || out.Replans != 0 {
			t.Fatalf("%s: %+v", policy, out)
		}
		if out.Latency <= 0 || out.Latency > c.InitialPlan().UpperBound() {
			t.Fatalf("%s: latency %v outside (0, upper %v]", policy, out.Latency, c.InitialPlan().UpperBound())
		}
	}
}

// All processors failing aborts the mission rather than erroring.
func TestMissionAllProcessorsFail(t *testing.T) {
	spec := missionSpec(t, 4, 1, mission.PolicyReschedule)
	c, err := mission.NewController(spec)
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NoFailures(4)
	lb := c.InitialPlan().LowerBound()
	for p := range sc.CrashTime {
		sc.CrashTime[p] = lb * 0.1 * float64(p+1)
	}
	_, out := collectLog(t, c, sc)
	if out.Success {
		t.Fatalf("mission survived all processors failing: %+v", out)
	}
	if out.Reason == "" {
		t.Fatal("aborted mission must carry a reason")
	}
}
