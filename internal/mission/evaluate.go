package mission

import (
	"ftsched/internal/sim"
)

// EvaluatePolicy scores a mission policy by Monte-Carlo fault injection:
// one mission per trial, scenarios drawn exactly as sim.Evaluate draws them
// (same generator, same per-trial seeds), aggregated by the same engine.
// Two calls that differ only in Spec.Policy therefore face identical
// failure draws trial for trial — the paired comparison /evaluate's policy
// mode reports. The failure-count buckets use the initial plan's upper
// bound as the mission window, again matching sim.Evaluate, so static and
// re-scheduling bucket identically.
//
// With Spec.Policy == PolicyStatic the result is bit-identical to
// sim.Evaluate of the initial plan (pinned by test): a static mission is a
// replay, and both run the same replay kernel.
func EvaluatePolicy(spec Spec, gen sim.ScenarioGenerator, trials int, opt sim.EvalOptions) (*sim.EvalResult, error) {
	probe, err := NewController(spec)
	if err != nil {
		return nil, err
	}
	window := probe.plan0.UpperBound()
	baseline := probe.plan0.LowerBound()
	newRunner := func() (sim.TrialFunc, func(), error) {
		ctl, err := NewController(spec)
		if err != nil {
			return nil, nil, err
		}
		run := func(_ int, sc sim.Scenario) (bool, float64, error) {
			out, err := ctl.Run(sc, nil)
			if err != nil {
				return false, 0, err
			}
			return out.Success, out.Latency, nil
		}
		return run, nil, nil
	}
	return sim.EvaluateScenarios(spec.Platform.NumProcs(), window, baseline, gen, trials, opt, newRunner)
}
