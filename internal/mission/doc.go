// Package mission executes schedules online against a virtual-clock
// simulated cluster, reacting to processor failures as they are observed.
//
// The offline pipeline (ROADMAP item 3 before this package) freezes a plan
// and scores it against sampled futures; a mission instead runs the plan,
// watches crashes land, and re-schedules the surviving suffix of the DAG —
// the pipelined overlap of execution and (re)scheduling that Octopus-style
// systems use, applied to the paper's fault-tolerance model. That turns
// "how good is this schedule?" into the strictly richer question the paper
// never measures: "how good is this *policy*?" — compare PolicyStatic
// (plan once, ride out the failures on replication alone) against
// PolicyReschedule (replicate and re-plan) on identical failure draws.
//
// # Execution model
//
// A mission is a sequence of segments. Segment 0 runs the initial schedule
// from virtual time 0. When the earliest crash among the segment's
// processors lands at time c before the segment finishes, the controller
// stops the world at c: work that completed at or before c is banked
// (first-completed-replica-wins, exactly the replay semantics of
// sim.RunWithOptions), in-flight work is lost, and the un-completed suffix
// of the DAG is re-scheduled from scratch on the surviving processors as a
// fresh sub-instance — dense task and processor renumbering, survivor-only
// cost averages, ε clamped to survivors−1. Completed tasks' outputs are
// assumed durable (re-fetchable by the new plan's entry tasks at zero
// cost); the suffix is successor-closed, so the sub-instance is a valid
// standalone problem.
//
// Re-planning does not recompute priorities from scratch: the controller
// keeps the full graph's average bottom levels and repairs them with
// dag.BottomLevelUpdater, marking dirty only the tasks whose survivor-mean
// node or edge costs actually changed. Because the suffix is
// successor-closed and the repaired costs are computed with the exact
// operation order CostModel.Mean and Platform.MeanDelay would apply to the
// sub-instance, the repaired levels restricted to the suffix are
// bit-for-bit what sched.AvgBottomLevels would return for it (pinned by
// test), and the scheduler consumes them via RunOptions.BottomLevels.
//
// # Determinism
//
// A mission outcome — the ordered event log and the final report — is a
// pure function of (Spec, Scenario). Scheduler tie-breaking for segment 0
// is seeded with Spec.Seed exactly as the serving layer seeds /schedule,
// so a static-policy mission agrees with the offline pipeline bit for bit;
// segment k>0 derives its stream with sim.TrialSeed(Seed, k). Event lines
// are canonical compact JSON in a fixed order (ties broken by time, then
// kind, then ID), so equal inputs yield byte-identical logs at any worker
// or shard count.
package mission
