// Package coord is the coordinator half of sharded ftserved: an http.Handler
// that fronts N worker shards (in-process service.Servers or remote workers
// behind Proxy) and routes every request by its canonical 128-bit fingerprint
// using rendezvous hashing.
//
// The routing invariant is what keeps the sharded deployment byte-identical
// to a single server: a fingerprint always lands on the same shard, so each
// shard's LRU owns a disjoint, stable keyspace and a repeat request finds its
// predecessor's cache entry no matter how many requests went elsewhere in
// between. Malformed bodies are rejected at the coordinator door with the
// same 400/413 contract as a standalone server — a request that cannot be
// fingerprinted never reaches a shard.
//
// POST /schedule/batch is split per item fingerprint into per-shard
// sub-batches, fanned out concurrently, and the per-item results are merged
// back in request order; GET /stats aggregates the per-shard counters into a
// merged view that preserves the conservation invariant
// (requests == cache_hits + cache_misses + client_errors + internal_errors).
package coord
