package coord

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync/atomic"

	"ftsched/internal/service"
)

// Options tunes a Coordinator. The zero value picks the same door limits a
// zero-value service.Config does.
type Options struct {
	// MaxBodyBytes limits a request body at the door (0: 32 MiB).
	MaxBodyBytes int64
	// MaxTasks rejects instances with more tasks at the door (0: unlimited).
	// Set it to the shards' own limit so oversized instances are refused
	// before they cost a decode on a worker.
	MaxTasks int
	// MaxBatchItems rejects /schedule/batch envelopes with more items at the
	// door (0: 256, the service default). The door must enforce this itself:
	// splitting an oversized envelope across shards would hand each shard a
	// sub-batch under its own limit, silently bypassing the guard.
	MaxBatchItems int
	// Log, when non-nil, receives one line per routed request.
	Log *log.Logger
}

// Coordinator fronts N worker shards. Each POST body is decoded and
// validated once at the door (malformed input 400s without touching a
// shard), fingerprinted with the same canonical fingerprint the shards' own
// caches key on, and forwarded verbatim to the shard RouteFingerprint picks.
// Responses stream straight from the shard to the client, headers included,
// so a routed response is byte-identical to what the shard alone would have
// served.
type Coordinator struct {
	shards []http.Handler
	opts   Options
	mux    *http.ServeMux

	// Door counters: requests received, and the ones terminated at the door
	// (malformed or over-limit, all 4xx). Routed requests are counted by the
	// shard that serves them; the stats merge folds the door rejections back
	// in so the merged view conserves.
	requests      atomic.Uint64
	rejected      atomic.Uint64
	batchRequests atomic.Uint64
}

// New creates a Coordinator over the given shard handlers (in-process
// service.Servers, Proxy handlers for remote workers, or a mix). It panics
// if shards is empty — a coordinator with nothing to route to is a
// construction error, not a runtime condition.
func New(shards []http.Handler, opts Options) *Coordinator {
	if len(shards) == 0 {
		panic("coord.New: no shards")
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.MaxBatchItems <= 0 {
		opts.MaxBatchItems = 256
	}
	c := &Coordinator{shards: shards, opts: opts, mux: http.NewServeMux()}
	c.mux.HandleFunc("POST /schedule", c.routed(decodeScheduleFP))
	c.mux.HandleFunc("POST /schedule/batch", c.handleBatch)
	c.mux.HandleFunc("POST /evaluate", c.routed(decodeEvaluateFP))
	c.mux.HandleFunc("POST /tune", c.routed(decodeTuneFP))
	c.mux.HandleFunc("POST /missions", c.routed(decodeMissionFP))
	c.mux.HandleFunc("GET /missions/{id}", c.missionByID)
	c.mux.HandleFunc("GET /missions/{id}/events", c.missionByID)
	// /scenarios is generated from the process-global scenario-kind registry,
	// identical on every shard, so the door answers it without a shard hop.
	c.mux.HandleFunc("GET /scenarios", service.ScenariosHandler)
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /stats", c.handleStats)
	return c
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Shards reports the shard count.
func (c *Coordinator) Shards() int { return len(c.shards) }

// Route exposes the routing decision for a fingerprint; tests and the
// verbose log use it.
func (c *Coordinator) Route(fp service.Fingerprint) int {
	return RouteFingerprint(fp, len(c.shards))
}

// decode*FP validate one body and derive the routing fingerprint; they are
// the per-endpoint plugs for the shared routed prologue. The number of tasks
// is returned for the door's MaxTasks guard.
func decodeScheduleFP(body []byte) (service.Fingerprint, int, error) {
	// The door decodes every request once just to route it; pooling the
	// request keeps that decode from re-allocating the graph arena on the
	// coordinator's hot path. The fingerprint is a value, so nothing escapes
	// the pooled request.
	req := service.AcquireScheduleRequest()
	defer service.ReleaseScheduleRequest(req)
	if err := service.DecodeScheduleRequestInto(req, bytes.NewReader(body)); err != nil {
		return service.Fingerprint{}, 0, err
	}
	return service.RequestFingerprint(req), req.Graph.NumTasks(), nil
}

func decodeEvaluateFP(body []byte) (service.Fingerprint, int, error) {
	req, err := service.DecodeEvaluateRequest(bytes.NewReader(body))
	if err != nil {
		return service.Fingerprint{}, 0, err
	}
	return service.EvaluateFingerprint(req), req.Graph.NumTasks(), nil
}

func decodeTuneFP(body []byte) (service.Fingerprint, int, error) {
	req, err := service.DecodeTuneRequest(bytes.NewReader(body))
	if err != nil {
		return service.Fingerprint{}, 0, err
	}
	return service.TuneFingerprint(req), req.Graph.NumTasks(), nil
}

func decodeMissionFP(body []byte) (service.Fingerprint, int, error) {
	req, err := service.DecodeMissionRequest(bytes.NewReader(body))
	if err != nil {
		return service.Fingerprint{}, 0, err
	}
	return service.MissionFingerprint(req), req.Graph.NumTasks(), nil
}

// missionByID routes the mission read endpoints. A mission id IS the hex of
// its routing fingerprint, so the owner of an id is recomputed from the id
// alone — no shared state, and the GET lands on the same shard the POST
// created the mission on at any shard count. Like the shards themselves,
// the door keeps mission reads out of the request counters (they are polls,
// not work), so a malformed id is refused with a bare 400 here rather than
// through reject.
func (c *Coordinator) missionByID(w http.ResponseWriter, r *http.Request) {
	fp, err := service.ParseMissionID(r.PathValue("id"))
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: err.Error()})
		return
	}
	shard := c.Route(fp)
	if c.opts.Log != nil {
		c.opts.Log.Printf("%s %s fp=%x shard=%d/%d", r.RemoteAddr, r.URL.Path, fp[:4], shard, len(c.shards))
	}
	c.forward(w, r, shard, nil)
}

// routed builds the handler for one single-fingerprint endpoint: buffer the
// body, decode → fingerprint at the door, and hand the original bytes to
// the owning shard. The shard decodes again — that duplicate decode is the
// price of the door guarantee that no malformed (or unroutable) body ever
// occupies a worker, and it is cheap next to any scheduling computation.
func (c *Coordinator) routed(decode func([]byte) (service.Fingerprint, int, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.requests.Add(1)
		body, ok := c.readBody(w, r)
		if !ok {
			return
		}
		fp, tasks, err := decode(body)
		if err != nil {
			c.reject(w, http.StatusBadRequest, err)
			return
		}
		if c.opts.MaxTasks > 0 && tasks > c.opts.MaxTasks {
			c.reject(w, http.StatusBadRequest,
				fmt.Errorf("instance has %d tasks, this deployment accepts at most %d", tasks, c.opts.MaxTasks))
			return
		}
		shard := c.Route(fp)
		if c.opts.Log != nil {
			c.opts.Log.Printf("%s %s fp=%x shard=%d/%d", r.RemoteAddr, r.URL.Path, fp[:4], shard, len(c.shards))
		}
		c.forward(w, r, shard, body)
	}
}

// readBody buffers the request body under the door limit. ok is false when
// an error response was written (413 past the limit, 400 otherwise).
func (c *Coordinator) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.opts.MaxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		c.reject(w, status, fmt.Errorf("reading request body: %w", err))
		return nil, false
	}
	return body, true
}

// reject terminates a request at the door with the service's uniform error
// body.
func (c *Coordinator) reject(w http.ResponseWriter, status int, err error) {
	c.rejected.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(service.ErrorResponse{Error: err.Error()})
}

// forward replays the buffered body against the shard, writing the shard's
// response (status, headers, body) directly to the client.
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, shard int, body []byte) {
	req := r.Clone(r.Context())
	req.Body = io.NopCloser(bytes.NewReader(body))
	req.ContentLength = int64(len(body))
	c.shards[shard].ServeHTTP(w, req)
}
