package coord

import (
	"bytes"
	"net/http"
	"sync/atomic"
	"testing"

	"ftsched/internal/service"
)

// countingShard is a fake worker that records how often it was hit. The fuzz
// target cares about the door, not about scheduling, so the shard just
// acknowledges whatever reaches it.
type countingShard struct {
	calls atomic.Uint64
}

func (s *countingShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.calls.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{}\n"))
}

// fuzzPaths maps the fuzzed selector byte onto the coordinator's POST surface.
var fuzzPaths = []string{"/schedule", "/evaluate", "/tune", "/schedule/batch"}

// FuzzRouteRequest fuzzes the coordinator door: arbitrary bytes against every
// POST endpoint of a 3-shard deployment. The invariants under fuzzing:
//
//  1. the coordinator never panics;
//  2. a body the service decoders reject is refused at the door with a 400
//     and reaches NO shard — malformed input must never occupy a worker;
//  3. a body that decodes is forwarded, and for the single-fingerprint
//     endpoints it reaches exactly the shard RouteFingerprint owns.
func FuzzRouteRequest(f *testing.F) {
	for i := range fuzzPaths {
		f.Add(byte(i), []byte(nil))
		f.Add(byte(i), []byte(`{}`))
		f.Add(byte(i), []byte(`{"graph": nope`))
	}
	f.Add(byte(0), scheduleBody("ftsa", 1, 0))
	f.Add(byte(0), scheduleBody("heft", 0, 2))
	f.Add(byte(1), evaluateBody(0, 40))
	f.Add(byte(2), tuneBody(24))
	f.Add(byte(3), batchBody(`{"scheduler": "ftsa", "epsilon": 1}, {"scheduler": "mcftsa", "epsilon": 1, "seed": 3}`))
	f.Add(byte(3), batchBody(``))
	f.Add(byte(3), []byte(`{"requests": [null]}`))
	f.Add(byte(0), []byte(`{"graph": {"name": "x", "tasks": 1, "edges": []}, "platform": {"procs": 1, "delay": [[0]]}, "costs": {"cost": [[1]]}, "scheduler": "ftsa", "epsilon": 1}`))

	f.Fuzz(func(t *testing.T, pathIdx byte, body []byte) {
		path := fuzzPaths[int(pathIdx)%len(fuzzPaths)]
		shards := []*countingShard{{}, {}, {}}
		handlers := make([]http.Handler, len(shards))
		for i := range shards {
			handlers[i] = shards[i]
		}
		c := New(handlers, Options{})

		rec := do(c, http.MethodPost, path, body)

		var reached uint64
		for _, s := range shards {
			reached += s.calls.Load()
		}
		decodes := func() bool {
			var err error
			switch path {
			case "/schedule":
				_, err = service.DecodeScheduleRequest(bytes.NewReader(body))
			case "/evaluate":
				_, err = service.DecodeEvaluateRequest(bytes.NewReader(body))
			case "/tune":
				_, err = service.DecodeTuneRequest(bytes.NewReader(body))
			case "/schedule/batch":
				_, err = service.DecodeBatchRequest(bytes.NewReader(body))
			}
			return err == nil
		}()

		if !decodes {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("%s: undecodable body got %d, want 400 (body %q)", path, rec.Code, body)
			}
			if reached != 0 {
				t.Fatalf("%s: undecodable body reached %d shard calls; the door must stop it", path, reached)
			}
			return
		}
		if rec.Code == http.StatusBadRequest {
			t.Fatalf("%s: decodable body rejected 400: %s", path, rec.Body.String())
		}
		if path == "/schedule/batch" {
			return // fan-out may hit several shards; the door invariant is covered above
		}
		if reached != 1 {
			t.Fatalf("%s: decodable body made %d shard calls, want exactly 1", path, reached)
		}
		fp, _, err := map[string]func([]byte) (service.Fingerprint, int, error){
			"/schedule": decodeScheduleFP, "/evaluate": decodeEvaluateFP, "/tune": decodeTuneFP,
		}[path](body)
		if err != nil {
			t.Fatal(err)
		}
		want := RouteFingerprint(fp, len(shards))
		if shards[want].calls.Load() != 1 {
			t.Fatalf("%s: request did not land on the owning shard %d", path, want)
		}
	})
}
