package coord

import (
	"bytes"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"ftsched/internal/service"
)

// countingShard is a fake worker that records how often it was hit. The fuzz
// target cares about the door, not about scheduling, so the shard just
// acknowledges whatever reaches it.
type countingShard struct {
	calls atomic.Uint64
}

func (s *countingShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.calls.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{}\n"))
}

// fuzzPaths maps the fuzzed selector byte onto the coordinator's POST surface.
var fuzzPaths = []string{"/schedule", "/evaluate", "/tune", "/schedule/batch"}

// FuzzRouteRequest fuzzes the coordinator door: arbitrary bytes against every
// POST endpoint of a 3-shard deployment. The invariants under fuzzing:
//
//  1. the coordinator never panics;
//  2. a body the service decoders reject is refused at the door with a 400
//     and reaches NO shard — malformed input must never occupy a worker;
//  3. a body that decodes is forwarded, and for the single-fingerprint
//     endpoints it reaches exactly the shard RouteFingerprint owns.
func FuzzRouteRequest(f *testing.F) {
	for i := range fuzzPaths {
		f.Add(byte(i), []byte(nil))
		f.Add(byte(i), []byte(`{}`))
		f.Add(byte(i), []byte(`{"graph": nope`))
	}
	f.Add(byte(0), scheduleBody("ftsa", 1, 0))
	f.Add(byte(0), scheduleBody("heft", 0, 2))
	f.Add(byte(1), evaluateBody(0, 40))
	f.Add(byte(2), tuneBody(24))
	f.Add(byte(3), batchBody(`{"scheduler": "ftsa", "epsilon": 1}, {"scheduler": "mcftsa", "epsilon": 1, "seed": 3}`))
	f.Add(byte(3), batchBody(``))
	f.Add(byte(3), []byte(`{"requests": [null]}`))
	f.Add(byte(0), []byte(`{"graph": {"name": "x", "tasks": 1, "edges": []}, "platform": {"procs": 1, "delay": [[0]]}, "costs": {"cost": [[1]]}, "scheduler": "ftsa", "epsilon": 1}`))

	f.Fuzz(func(t *testing.T, pathIdx byte, body []byte) {
		path := fuzzPaths[int(pathIdx)%len(fuzzPaths)]
		shards := []*countingShard{{}, {}, {}}
		handlers := make([]http.Handler, len(shards))
		for i := range shards {
			handlers[i] = shards[i]
		}
		c := New(handlers, Options{})

		rec := do(c, http.MethodPost, path, body)

		var reached uint64
		for _, s := range shards {
			reached += s.calls.Load()
		}
		decodes := func() bool {
			var err error
			switch path {
			case "/schedule":
				_, err = service.DecodeScheduleRequest(bytes.NewReader(body))
			case "/evaluate":
				_, err = service.DecodeEvaluateRequest(bytes.NewReader(body))
			case "/tune":
				_, err = service.DecodeTuneRequest(bytes.NewReader(body))
			case "/schedule/batch":
				_, err = service.DecodeBatchRequest(bytes.NewReader(body))
			}
			return err == nil
		}()

		if !decodes {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("%s: undecodable body got %d, want 400 (body %q)", path, rec.Code, body)
			}
			if reached != 0 {
				t.Fatalf("%s: undecodable body reached %d shard calls; the door must stop it", path, reached)
			}
			return
		}
		if rec.Code == http.StatusBadRequest {
			t.Fatalf("%s: decodable body rejected 400: %s", path, rec.Body.String())
		}
		if path == "/schedule/batch" {
			return // fan-out may hit several shards; the door invariant is covered above
		}
		if reached != 1 {
			t.Fatalf("%s: decodable body made %d shard calls, want exactly 1", path, reached)
		}
		fp, _, err := map[string]func([]byte) (service.Fingerprint, int, error){
			"/schedule": decodeScheduleFP, "/evaluate": decodeEvaluateFP, "/tune": decodeTuneFP,
		}[path](body)
		if err != nil {
			t.Fatal(err)
		}
		want := RouteFingerprint(fp, len(shards))
		if shards[want].calls.Load() != 1 {
			t.Fatalf("%s: request did not land on the owning shard %d", path, want)
		}
	})
}

// FuzzRouteMission extends the door contract to the mission surface:
// arbitrary bytes against POST /missions and arbitrary ids against
// GET /missions/{id}. The same invariants hold — never panic, undecodable
// input is a 400 that reaches NO shard, decodable input reaches exactly the
// owning shard — plus the mission-specific one: a GET with a well-formed id
// routes to the same shard as the POST whose fingerprint spelled that id.
func FuzzRouteMission(f *testing.F) {
	f.Add([]byte(nil), "")
	f.Add([]byte(`{}`), "not-an-id")
	f.Add([]byte(`{"graph": nope`), "0123456789abcdef0123456789abcdef")
	f.Add(missionBody("mcftsa", 1, "reschedule"), "0123456789ABCDEF0123456789abcdef")
	f.Add(missionBody("heft", 0, "static"), "0123456789abcdef0123456789abcde")
	f.Add(missionBody("ftsa", 1, ""), "g123456789abcdef0123456789abcdef")

	f.Fuzz(func(t *testing.T, body []byte, id string) {
		shards := []*countingShard{{}, {}, {}}
		handlers := make([]http.Handler, len(shards))
		for i := range shards {
			handlers[i] = shards[i]
		}
		c := New(handlers, Options{})

		rec := do(c, http.MethodPost, "/missions", body)
		reached := func() (n uint64) {
			for _, s := range shards {
				n += s.calls.Load()
			}
			return n
		}
		req, decodeErr := service.DecodeMissionRequest(bytes.NewReader(body))
		if decodeErr != nil {
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("POST /missions: undecodable body got %d, want 400 (body %q)", rec.Code, body)
			}
			if reached() != 0 {
				t.Fatalf("POST /missions: undecodable body reached %d shard calls; the door must stop it", reached())
			}
		} else {
			if rec.Code == http.StatusBadRequest {
				t.Fatalf("POST /missions: decodable body rejected 400: %s", rec.Body.String())
			}
			fp := service.MissionFingerprint(req)
			want := RouteFingerprint(fp, len(shards))
			if shards[want].calls.Load() != 1 || reached() != 1 {
				t.Fatalf("POST /missions: %d shard calls, owner %d got %d; want exactly the owner",
					reached(), want, shards[want].calls.Load())
			}
			// The id the POST minted must route its GET to the same shard.
			before := reached()
			rec = do(c, http.MethodGet, "/missions/"+service.MissionID(fp), nil)
			if rec.Code == http.StatusBadRequest {
				t.Fatalf("GET /missions/{id}: minted id rejected: %s", rec.Body.String())
			}
			if shards[want].calls.Load() != 2 || reached() != before+1 {
				t.Fatalf("GET /missions/{id} did not land on the owning shard %d", want)
			}
		}

		// Fuzzed id against the read endpoints: malformed ids must die at the
		// door without a shard call; well-formed ids route deterministically.
		// Only printable-ASCII single-segment ids are addressable through
		// httptest.NewRequest; anything else cannot reach the door anyway.
		if strings.ContainsAny(id, "/?#% ") {
			return
		}
		for i := 0; i < len(id); i++ {
			if id[i] <= 0x20 || id[i] >= 0x7f {
				return
			}
		}
		fp, idErr := service.ParseMissionID(id)
		owner := RouteFingerprint(fp, len(shards))
		before, ownerBefore := reached(), shards[owner].calls.Load()
		rec = do(c, http.MethodGet, "/missions/"+id, nil)
		if idErr != nil {
			if rec.Code != http.StatusBadRequest && rec.Code != http.StatusNotFound && rec.Code != http.StatusMovedPermanently {
				t.Fatalf("GET /missions/%q: malformed id got %d, want 4xx", id, rec.Code)
			}
			if reached() != before {
				t.Fatalf("GET /missions/%q: malformed id reached a shard", id)
			}
			return
		}
		if reached() != before+1 || shards[owner].calls.Load() != ownerBefore+1 {
			t.Fatalf("GET /missions/%q did not land on exactly the owning shard %d", id, owner)
		}
	})
}
