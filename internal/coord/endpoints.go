package coord

import (
	"fmt"
	"strings"
)

// endpoint describes one row of the coordinator's HTTP surface for the
// generated documentation table; the docs drift test compares docs/API.md
// against EndpointTable, so the documented behavior cannot go stale.
type endpoint struct {
	method, path, behavior string
}

// endpoints lists the coordinator routes in documentation order. Keep it in
// sync with the mux registrations in New.
var endpoints = []endpoint{
	{"POST", "/schedule", "decode + fingerprint at the door, forward verbatim to the owning shard"},
	{"POST", "/schedule/batch", "decode once, split per item fingerprint, fan out sub-batches, merge items in request order"},
	{"POST", "/evaluate", "decode + fingerprint at the door, forward verbatim to the owning shard"},
	{"POST", "/tune", "decode + fingerprint at the door, forward verbatim to the owning shard"},
	{"POST", "/missions", "decode + fingerprint at the door, forward verbatim to the owning shard (the mission id is the fingerprint, so reads route themselves)"},
	{"GET", "/missions/{id}", "parse the id as a fingerprint, forward to the shard that owns the mission"},
	{"GET", "/missions/{id}/events", "parse the id as a fingerprint, forward to the shard that owns the mission"},
	{"GET", "/scenarios", "answered at the door from the process-global scenario-kind registry (identical on every shard)"},
	{"GET", "/healthz", "ok only when every shard is ok"},
	{"GET", "/stats", "door counters + conservation-preserving merged view + raw per-shard stats"},
}

// EndpointTable renders the coordinator surface as a GitHub-flavored
// markdown table for docs/API.md's generated-table markers.
func EndpointTable() string {
	var b strings.Builder
	b.WriteString("| Method | Path | Coordinator behavior |\n")
	b.WriteString("|---|---|---|\n")
	for _, e := range endpoints {
		fmt.Fprintf(&b, "| %s | `%s` | %s |\n", e.method, e.path, e.behavior)
	}
	return b.String()
}
