package coord

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Proxy adapts a remote worker (a standalone ftserved reachable over HTTP)
// to the http.Handler interface the Coordinator routes to, so one deployment
// can mix in-process shards with workers on other machines. The request is
// replayed verbatim against base+path; status, headers and body stream back
// unchanged — the coordinator cannot tell a Proxy from a local shard.
type Proxy struct {
	// Base is the worker root, e.g. "http://worker-3:8080".
	Base string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimSuffix(p.Base, "/") + r.URL.Path
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := client.Do(req)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for name, values := range resp.Header {
		for _, v := range values {
			w.Header().Add(name, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
