package coord

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"

	"ftsched/internal/service"
)

// DoorStats are the coordinator's own counters: traffic seen at the door
// before any shard is involved.
type DoorStats struct {
	// Requests counts everything received, routed or not; Rejected the
	// requests terminated at the door with a 4xx (malformed, over-limit) —
	// those never reached a shard, so no shard counter knows them.
	Requests uint64 `json:"requests"`
	Rejected uint64 `json:"rejected"`
	// BatchRequests counts /schedule/batch envelopes at the door; the
	// merged view's batch_requests instead counts the per-shard sub-batch
	// envelopes the split produced.
	BatchRequests uint64 `json:"batch_requests"`
}

// Stats is the body of the coordinator's GET /stats: the door's own
// counters, the merged cross-shard view, and each shard's raw stats.
type Stats struct {
	Shards   int             `json:"shards"`
	Door     DoorStats       `json:"door"`
	Merged   service.Stats   `json:"merged"`
	PerShard []service.Stats `json:"per_shard"`
}

// MergeShardStats folds per-shard counters into one deployment-wide view.
// Counters of disjoint events add: requests, hits, misses, errors, queue
// occupancy, entries, workers, and the per-scheduler table. QueueHighWater
// does NOT add — each shard's high-water mark is a maximum over time, and a
// sum of maxima taken at different moments is not the depth of anything; the
// deepest single-shard backlog is the honest merged figure. HitRate is
// recomputed from the summed hits and misses. Latency quantiles cannot be
// merged exactly from quantiles: Count and the count-weighted Mean are
// exact, while P50/P99/Max take the worst shard — a conservative bound, and
// exact for Max.
func MergeShardStats(per []service.Stats) service.Stats {
	var m service.Stats
	m.SchedulerRequests = make(map[string]uint64)
	var meanWeighted float64
	for _, s := range per {
		m.Requests += s.Requests
		m.EvaluateRequests += s.EvaluateRequests
		m.TuneRequests += s.TuneRequests
		m.MissionRequests += s.MissionRequests
		m.BatchRequests += s.BatchRequests
		m.BatchItems += s.BatchItems
		m.Missions += s.Missions
		m.CacheHits += s.CacheHits
		m.CacheMisses += s.CacheMisses
		m.SingleflightShared += s.SingleflightShared
		m.CacheEntries += s.CacheEntries
		m.Rejected += s.Rejected
		m.ClientErrors += s.ClientErrors
		m.InternalErrors += s.InternalErrors
		m.CancelledRequests += s.CancelledRequests
		m.QueueDepth += s.QueueDepth
		m.QueueCapacity += s.QueueCapacity
		m.Workers += s.Workers
		for name, n := range s.SchedulerRequests {
			m.SchedulerRequests[name] += n
		}
		if s.QueueHighWater > m.QueueHighWater {
			m.QueueHighWater = s.QueueHighWater
		}
		m.LatencyMs.Count += s.LatencyMs.Count
		meanWeighted += s.LatencyMs.Mean * float64(s.LatencyMs.Count)
		if s.LatencyMs.P50 > m.LatencyMs.P50 {
			m.LatencyMs.P50 = s.LatencyMs.P50
		}
		if s.LatencyMs.P99 > m.LatencyMs.P99 {
			m.LatencyMs.P99 = s.LatencyMs.P99
		}
		if s.LatencyMs.Max > m.LatencyMs.Max {
			m.LatencyMs.Max = s.LatencyMs.Max
		}
	}
	if m.CacheHits+m.CacheMisses > 0 {
		m.HitRate = float64(m.CacheHits) / float64(m.CacheHits+m.CacheMisses)
	}
	if m.LatencyMs.Count > 0 {
		m.LatencyMs.Mean = meanWeighted / float64(m.LatencyMs.Count)
	}
	return m
}

// shardGet replays a GET against one shard and decodes the JSON body.
func (c *Coordinator) shardGet(shard int, path string, out any) error {
	rec := httptest.NewRecorder()
	c.shards[shard].ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		return fmt.Errorf("shard %d: GET %s returned %d", shard, path, rec.Code)
	}
	return json.Unmarshal(rec.Body.Bytes(), out)
}

// handleStats aggregates GET /stats across every shard. The merged view
// folds the door's rejections back in — a request refused at the door never
// reached a shard, but it is still a request that ended in a client error —
// so merged.requests == merged.cache_hits + merged.cache_misses +
// merged.client_errors + merged.internal_errors + merged.cancelled_requests
// holds for the deployment exactly as it does for a standalone server.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Shards: len(c.shards),
		Door: DoorStats{
			Requests:      c.requests.Load(),
			Rejected:      c.rejected.Load(),
			BatchRequests: c.batchRequests.Load(),
		},
		PerShard: make([]service.Stats, len(c.shards)),
	}
	for i := range c.shards {
		if err := c.shardGet(i, "/stats", &st.PerShard[i]); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadGateway)
			return
		}
	}
	st.Merged = MergeShardStats(st.PerShard)
	st.Merged.Requests += st.Door.Rejected
	st.Merged.ClientErrors += st.Door.Rejected
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// handleHealthz reports ok only when every shard does.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	for i := range c.shards {
		var health struct {
			Status string `json:"status"`
		}
		if err := c.shardGet(i, "/healthz", &health); err != nil || health.Status != "ok" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"status":"degraded","shards":%d,"failing_shard":%d}%s`, len(c.shards), i, "\n")
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","shards":%d}%s`, len(c.shards), "\n")
}
