package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"

	"ftsched/internal/service"
)

// handleBatch serves POST /schedule/batch at the coordinator: decode and
// validate the envelope once at the door, route every item by its request
// fingerprint, fan the per-shard sub-batches out concurrently, and merge the
// per-item results back in request order. Because an item's fingerprint — not
// its batch position — decides its shard, repeated parameter sets land where
// their cache entry lives, and the merged response carries the same bytes per
// item as a single-server batch.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	c.requests.Add(1)
	c.batchRequests.Add(1)
	body, ok := c.readBody(w, r)
	if !ok {
		return
	}
	req, err := service.DecodeBatchRequest(bytes.NewReader(body))
	if err != nil {
		c.reject(w, http.StatusBadRequest, err)
		return
	}
	if c.opts.MaxTasks > 0 && req.NumTasks() > c.opts.MaxTasks {
		c.reject(w, http.StatusBadRequest,
			fmt.Errorf("instance has %d tasks, this deployment accepts at most %d", req.NumTasks(), c.opts.MaxTasks))
		return
	}
	items := req.Items()
	if len(items) > c.opts.MaxBatchItems {
		c.reject(w, http.StatusBadRequest,
			fmt.Errorf("batch carries %d requests, this deployment accepts at most %d",
				len(items), c.opts.MaxBatchItems))
		return
	}
	groups := make(map[int][]int) // shard -> original item indices, in order
	for i, it := range items {
		shard := c.Route(service.RequestFingerprint(it))
		groups[shard] = append(groups[shard], i)
	}
	if c.opts.Log != nil {
		c.opts.Log.Printf("%s /schedule/batch items=%d shards=%d", r.RemoteAddr, len(items), len(groups))
	}

	// Whole batch owned by one shard: forward the original bytes, the
	// response streams straight through.
	if len(groups) == 1 {
		for shard := range groups {
			c.forward(w, r, shard, body)
		}
		return
	}

	// Fan out one sub-batch per owning shard, concurrently. Sub-envelopes
	// re-marshal the decoded instance; JSON float64 round-tripping is exact,
	// so a shard decodes (and fingerprints) the same instance either way.
	type shardReply struct {
		shard  int
		idxs   []int
		status int
		header http.Header
		body   []byte
	}
	replies := make([]*shardReply, 0, len(groups))
	for shard, idxs := range groups {
		replies = append(replies, &shardReply{shard: shard, idxs: idxs})
	}
	// Deterministic order: failure relay and merge walk shards ascending.
	sort.Slice(replies, func(a, b int) bool { return replies[a].shard < replies[b].shard })
	var wg sync.WaitGroup
	for _, reply := range replies {
		wg.Add(1)
		go func(reply *shardReply) {
			defer wg.Done()
			sub := service.BatchRequest{
				Graph: req.Graph, Platform: req.Platform, Costs: req.Costs,
				Requests: make([]service.BatchItem, 0, len(reply.idxs)),
			}
			for _, i := range reply.idxs {
				sub.Requests = append(sub.Requests, req.Requests[i])
			}
			subBody, err := json.Marshal(&sub)
			if err != nil { // unreachable: sub re-marshals decoded values
				reply.status = http.StatusInternalServerError
				reply.body = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
				return
			}
			rec := httptest.NewRecorder()
			subReq := httptest.NewRequest(http.MethodPost, "/schedule/batch", bytes.NewReader(subBody))
			subReq.Header.Set("Content-Type", "application/json")
			c.shards[reply.shard].ServeHTTP(rec, subReq)
			reply.status = rec.Code
			reply.header = rec.Header()
			reply.body = rec.Body.Bytes()
		}(reply)
	}
	wg.Wait()

	// All-or-nothing: any failed sub-batch fails the whole batch with the
	// lowest failing shard's own response (a 429's Retry-After included).
	// The successful shards keep their cache entries, so a retry re-serves
	// those items as hits.
	for _, reply := range replies {
		if reply.status != http.StatusOK {
			if ra := reply.header.Get("Retry-After"); ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(reply.status)
			w.Write(reply.body)
			return
		}
	}

	// Merge per-item results back into request order.
	out := service.BatchResponse{Count: len(items), Items: make([]service.BatchItemResult, len(items))}
	for _, reply := range replies {
		var sr service.BatchResponse
		if err := json.Unmarshal(reply.body, &sr); err != nil || len(sr.Items) != len(reply.idxs) {
			// Unreachable with well-behaved shards; outside the counter
			// ledger because the shards already accounted their items.
			http.Error(w, fmt.Sprintf(`{"error":"shard %d returned an unreadable batch response"}`, reply.shard),
				http.StatusBadGateway)
			return
		}
		out.CacheHits += sr.CacheHits
		out.CacheMisses += sr.CacheMisses
		for k, i := range reply.idxs {
			out.Items[i] = sr.Items[k]
		}
	}
	merged, err := marshalBatchResponse(&out)
	if err != nil { // unreachable: items are valid JSON from the shards
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	status := "miss"
	if out.CacheMisses == 0 {
		status = "hit"
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(service.CacheStatusHeader, status)
	w.Write(merged)
}

// marshalBatchResponse mirrors the service's deterministic encoding (compact,
// no HTML escaping, trailing newline), so a merged batch response is
// byte-identical to the one a single server would produce for the same
// envelope and cache state.
func marshalBatchResponse(resp *service.BatchResponse) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(resp); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
