package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"ftsched/internal/service"
)

// postMission creates a mission and returns its id.
func postMission(t *testing.T, h http.Handler, body []byte) string {
	t.Helper()
	rec := do(h, http.MethodPost, "/missions", body)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("POST /missions: %d %s", rec.Code, rec.Body.String())
	}
	var acc struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &acc); err != nil {
		t.Fatal(err)
	}
	if acc.State != "accepted" || acc.ID == "" {
		t.Fatalf("POST /missions: unexpected body %s", rec.Body.String())
	}
	return acc.ID
}

// awaitMission polls GET /missions/{id} until the mission leaves the running
// state, returning the final report bytes.
func awaitMission(t *testing.T, h http.Handler, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := do(h, http.MethodGet, "/missions/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /missions/%s: %d %s", id, rec.Code, rec.Body.String())
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State != service.MissionRunning {
			return rec.Body.Bytes()
		}
		if time.Now().After(deadline) {
			t.Fatalf("mission %s still running after 30s", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMissionShardedByteIdentical is the mission sharding guarantee: the
// same POST /missions produces the same id, the same final report and the
// same JSONL event log on a standalone server and on 1-, 2- and 4-shard
// deployments at different worker counts — and the coordinator routes the
// reads to the one shard that owns the mission.
func TestMissionShardedByteIdentical(t *testing.T) {
	for _, policy := range []string{"static", "reschedule"} {
		t.Run(policy, func(t *testing.T) {
			body := missionBody("mcftsa", 1, policy)

			single := service.New(service.Config{Workers: 1})
			t.Cleanup(single.Close)
			id := postMission(t, single, body)
			wantReport := awaitMission(t, single, id)
			wantEvents := do(single, http.MethodGet, "/missions/"+id+"/events", nil).Body.Bytes()
			if len(wantEvents) == 0 {
				t.Fatal("single server: empty event log")
			}

			for _, n := range []int{1, 2, 4} {
				c, shards := newDeployment(t, n, service.Config{Workers: 1 + n%3})
				gotID := postMission(t, c, body)
				if gotID != id {
					t.Fatalf("%d shards: mission id %s, single server minted %s", n, gotID, id)
				}
				gotReport := awaitMission(t, c, gotID)
				if !bytes.Equal(gotReport, wantReport) {
					t.Fatalf("%d shards: report differs:\n%s\nvs\n%s", n, gotReport, wantReport)
				}
				gotEvents := do(c, http.MethodGet, "/missions/"+gotID+"/events", nil).Body.Bytes()
				if !bytes.Equal(gotEvents, wantEvents) {
					t.Fatalf("%d shards: event log differs:\n%s\nvs\n%s", n, gotEvents, wantEvents)
				}

				// Idempotent re-POST: a hit on exactly the owning shard.
				rec := do(c, http.MethodPost, "/missions", body)
				if rec.Code != http.StatusAccepted || rec.Header().Get(service.CacheStatusHeader) != "hit" {
					t.Fatalf("%d shards: re-POST got %d cache=%q", n, rec.Code, rec.Header().Get(service.CacheStatusHeader))
				}

				// Exactly one shard holds the mission state, and it is the one
				// RouteFingerprint picks from the id.
				fp, err := service.ParseMissionID(gotID)
				if err != nil {
					t.Fatal(err)
				}
				owner := RouteFingerprint(fp, n)
				for i, s := range shards {
					st := serverStats(t, s)
					if want := map[bool]int{true: 1, false: 0}[i == owner]; st.Missions != want {
						t.Fatalf("%d shards: shard %d holds %d missions, want %d (owner %d)",
							n, i, st.Missions, want, owner)
					}
				}

				// The merged /stats view counts the deployment's missions.
				cs := coordStats(t, c)
				if cs.Merged.Missions != 1 || cs.Merged.MissionRequests != 2 {
					t.Fatalf("%d shards: merged stats missions=%d mission_requests=%d, want 1 and 2",
						n, cs.Merged.Missions, cs.Merged.MissionRequests)
				}
			}
		})
	}
}

func serverStats(t *testing.T, s *service.Server) service.Stats {
	t.Helper()
	rec := do(s, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats: %d", rec.Code)
	}
	var st service.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestMissionCoordinatorDoor pins the door behavior for the mission surface:
// malformed POST bodies and malformed ids never reach a shard, and unknown
// (but well-formed) ids 404 from the owning shard.
func TestMissionCoordinatorDoor(t *testing.T) {
	c, shards := newDeployment(t, 3, service.Config{})

	rec := do(c, http.MethodPost, "/missions", []byte(`{"scheduler": "mcftsa"}`))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed POST: %d", rec.Code)
	}
	rec = do(c, http.MethodGet, "/missions/zz", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed id: %d", rec.Code)
	}
	for i, s := range shards {
		if st := serverStats(t, s); st.Requests != 0 || st.MissionRequests != 0 {
			t.Fatalf("shard %d saw traffic: %+v", i, st)
		}
	}

	unknown := fmt.Sprintf("%032x", 12345)
	rec = do(c, http.MethodGet, "/missions/"+unknown, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id: %d %s", rec.Code, rec.Body.String())
	}
}
