package coord

import (
	"encoding/binary"
	"hash/fnv"

	"ftsched/internal/service"
)

// RouteFingerprint picks the shard for a fingerprint by rendezvous (highest
// random weight) hashing: score every shard with fnv64a(shard index ‖ fp)
// and take the argmax. The choice is deterministic in (fp, shards), spreads
// fingerprints near-uniformly, and is minimally disruptive when the shard
// count grows — a key only moves if the new shard wins it, so going from N
// to N+1 shards reshuffles ~1/(N+1) of the keyspace instead of almost all
// of it (which naive fp mod N would).
//
// The index is absorbed BEFORE the fingerprint, and the order matters: FNV-1a
// absorbs a byte as (h XOR b) * prime, so two scores whose inputs differ only
// in the final bytes differ by at most a few multiples of the prime (~2^40) —
// far too close together mod 2^64 for the argmax to be fair. Feeding the index
// first pushes the difference through sixteen further rounds, which diffuses
// it across the whole word; with the index last, odd shard counts see the
// highest-indexed shard win about half the keyspace.
func RouteFingerprint(fp service.Fingerprint, shards int) int {
	if shards <= 1 {
		return 0
	}
	best, bestScore := 0, uint64(0)
	var idx [4]byte
	for i := 0; i < shards; i++ {
		h := fnv.New64a()
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		h.Write(fp[:])
		if score := h.Sum64(); i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}
