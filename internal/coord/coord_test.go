package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ftsched/internal/service"
)

// diamondInstance is the docs/API.md example instance: 4 tasks, 3 procs.
const diamondInstance = `"graph": {
    "name": "diamond",
    "tasks": 4,
    "edges": [
      {"src": 0, "dst": 1, "volume": 1},
      {"src": 0, "dst": 2, "volume": 2},
      {"src": 1, "dst": 3, "volume": 1},
      {"src": 2, "dst": 3, "volume": 0.5}
    ]
  },
  "platform": {
    "procs": 3,
    "delay": [[0, 0.5, 0.5], [0.5, 0, 0.5], [0.5, 0.5, 0]]
  },
  "costs": {
    "cost": [[1, 2, 1.5], [2, 1, 1], [1, 1, 2], [2, 1.5, 1]]
  }`

// scheduleBody builds a /schedule request over the diamond instance.
func scheduleBody(scheduler string, epsilon int, seed int64) []byte {
	return []byte(fmt.Sprintf(`{%s, "scheduler": %q, "epsilon": %d, "seed": %d}`,
		diamondInstance, scheduler, epsilon, seed))
}

// evaluateBody builds a /evaluate request over the diamond instance.
func evaluateBody(seed int64, trials int) []byte {
	return []byte(fmt.Sprintf(`{%s, "scheduler": "ftsa", "epsilon": 1, "seed": %d,
	  "trials": %d, "scenario": {"kind": "uniform", "crashes": 1}, "eval_seed": 7}`,
		diamondInstance, seed, trials))
}

// tuneBody builds a /tune request over the diamond instance.
func tuneBody(trials int) []byte {
	return []byte(fmt.Sprintf(`{%s, "trials": %d, "target": 0.9,
	  "scenario": {"kind": "uniform", "crashes": 1}, "eval_seed": 7}`,
		diamondInstance, trials))
}

// batchBody builds a /schedule/batch envelope over the diamond instance.
func batchBody(items string) []byte {
	return []byte(fmt.Sprintf(`{%s, "requests": [%s]}`, diamondInstance, items))
}

// missionBody builds a /missions request over the diamond instance.
func missionBody(scheduler string, epsilon int, policy string) []byte {
	p := ""
	if policy != "" {
		p = fmt.Sprintf(`, "mission_policy": %q`, policy)
	}
	return []byte(fmt.Sprintf(`{%s, "scheduler": %q, "epsilon": %d, "seed": 7,
	  "scenario": {"kind": "uniform", "crashes": 1}, "scenario_seed": 5%s}`,
		diamondInstance, scheduler, epsilon, p))
}

// newDeployment builds a coordinator over n in-process shards, all cleaned
// up with the test.
func newDeployment(t *testing.T, n int, cfg service.Config) (*Coordinator, []*service.Server) {
	t.Helper()
	shards := make([]*service.Server, n)
	handlers := make([]http.Handler, n)
	for i := range shards {
		shardCfg := cfg
		shardCfg.Shard = fmt.Sprintf("%d", i)
		shards[i] = service.New(shardCfg)
		handlers[i] = shards[i]
		t.Cleanup(shards[i].Close)
	}
	return New(handlers, Options{}), shards
}

// do replays one request against a handler.
func do(h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	var r *bytes.Reader
	if body == nil {
		r = bytes.NewReader(nil)
	} else {
		r = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func coordStats(t *testing.T, c *Coordinator) Stats {
	t.Helper()
	rec := do(c, http.MethodGet, "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /stats: %d %s", rec.Code, rec.Body.String())
	}
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRoutedPassthroughByteIdentical is the core sharding guarantee: for
// every POST endpoint, a sharded deployment serves byte-for-byte the
// responses a single server serves, and the repeat request is a cache hit on
// both — the shard that owns a fingerprint owns it forever.
func TestRoutedPassthroughByteIdentical(t *testing.T) {
	single := service.New(service.Config{})
	t.Cleanup(single.Close)
	c, _ := newDeployment(t, 4, service.Config{})

	requests := []struct {
		path string
		body []byte
	}{
		{"/schedule", scheduleBody("ftsa", 1, 0)},
		{"/schedule", scheduleBody("mcftsa", 1, 3)},
		{"/schedule", scheduleBody("heft", 0, 0)},
		{"/evaluate", evaluateBody(0, 40)},
		{"/tune", tuneBody(24)},
	}
	for _, rq := range requests {
		for round, wantCache := range []string{"miss", "hit"} {
			sRec := do(single, http.MethodPost, rq.path, rq.body)
			cRec := do(c, http.MethodPost, rq.path, rq.body)
			if sRec.Code != http.StatusOK || cRec.Code != http.StatusOK {
				t.Fatalf("%s round %d: single=%d coord=%d (%s)", rq.path, round, sRec.Code, cRec.Code, cRec.Body.String())
			}
			if !bytes.Equal(sRec.Body.Bytes(), cRec.Body.Bytes()) {
				t.Fatalf("%s round %d: sharded response differs from single server:\nsingle: %s\ncoord:  %s",
					rq.path, round, sRec.Body.String(), cRec.Body.String())
			}
			for _, rec := range []*httptest.ResponseRecorder{sRec, cRec} {
				if got := rec.Header().Get(service.CacheStatusHeader); got != wantCache {
					t.Fatalf("%s round %d: cache status %q, want %q", rq.path, round, got, wantCache)
				}
			}
		}
	}
}

// TestDoorRejectsMalformed pins the door contract: a body that cannot be
// decoded and fingerprinted is refused at the coordinator with the same
// status a standalone server would use, and NO shard ever sees it.
func TestDoorRejectsMalformed(t *testing.T) {
	c, shards := newDeployment(t, 2, service.Config{})
	cases := []struct {
		name, path string
		body       []byte
		want       int
	}{
		{"malformed schedule", "/schedule", []byte(`{"graph": nope`), 400},
		{"empty evaluate", "/evaluate", []byte(``), 400},
		{"unknown field", "/tune", []byte(`{"trialz": 1}`), 400},
		{"unregistered scheduler", "/schedule", scheduleBody("nope", 1, 0), 400},
		{"empty batch", "/schedule/batch", batchBody(``), 400},
		{"invalid batch item", "/schedule/batch", batchBody(`{"scheduler": "heft", "epsilon": 2}`), 400},
	}
	for _, tc := range cases {
		rec := do(c, http.MethodPost, tc.path, tc.body)
		if rec.Code != tc.want {
			t.Fatalf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
		var e service.ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("%s: unhelpful error body %q", tc.name, rec.Body.String())
		}
	}
	st := coordStats(t, c)
	if st.Door.Rejected != uint64(len(cases)) || st.Door.Requests != uint64(len(cases)) {
		t.Fatalf("door requests=%d rejected=%d, want %d/%d", st.Door.Requests, st.Door.Rejected, len(cases), len(cases))
	}
	for i, s := range st.PerShard {
		if s.Requests != 0 {
			t.Fatalf("shard %d saw %d requests; malformed traffic must die at the door", i, s.Requests)
		}
	}
	// The shards never served anything, so the merged view is pure door
	// arithmetic — and it must still conserve.
	if st.Merged.Requests != uint64(len(cases)) || st.Merged.ClientErrors != uint64(len(cases)) {
		t.Fatalf("merged requests=%d client_errors=%d, want %d/%d",
			st.Merged.Requests, st.Merged.ClientErrors, len(cases), len(cases))
	}
	_ = shards
}

// TestDoorBodyLimit: a body past the coordinator's limit 413s at the door.
func TestDoorBodyLimit(t *testing.T) {
	srv := service.New(service.Config{})
	t.Cleanup(srv.Close)
	c := New([]http.Handler{srv}, Options{MaxBodyBytes: 64})
	rec := do(c, http.MethodPost, "/schedule", scheduleBody("ftsa", 1, 0))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", rec.Code)
	}
	// MaxTasks guard: the diamond has 4 tasks.
	c2 := New([]http.Handler{srv}, Options{MaxTasks: 2})
	rec = do(c2, http.MethodPost, "/schedule", scheduleBody("ftsa", 1, 0))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "at most 2") {
		t.Fatalf("MaxTasks guard: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestDoorBatchLimit: the door enforces MaxBatchItems itself. Splitting an
// oversized envelope across shards would hand every shard a sub-batch under
// its own limit — the deployment must not accept through division what one
// server would reject whole.
func TestDoorBatchLimit(t *testing.T) {
	shards := make([]http.Handler, 2)
	for i := range shards {
		srv := service.New(service.Config{MaxBatchItems: 3})
		t.Cleanup(srv.Close)
		shards[i] = srv
	}
	c := New(shards, Options{MaxBatchItems: 3})
	// Four items with distinct seeds: certain to exceed the limit and very
	// likely to span both shards (the bypass scenario).
	items := `{"scheduler": "ftsa", "epsilon": 1, "seed": 1},
	  {"scheduler": "ftsa", "epsilon": 1, "seed": 2},
	  {"scheduler": "ftsa", "epsilon": 1, "seed": 3},
	  {"scheduler": "ftsa", "epsilon": 1, "seed": 4}`
	rec := do(c, http.MethodPost, "/schedule/batch", batchBody(items))
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "at most 3") {
		t.Fatalf("MaxBatchItems guard: status %d body %s", rec.Code, rec.Body.String())
	}
	st := coordStats(t, c)
	for i, s := range st.PerShard {
		if s.Requests != 0 {
			t.Fatalf("shard %d saw %d requests; the oversized batch must die at the door", i, s.Requests)
		}
	}
}

// splitSeeds finds two /schedule parameter sets that route to different
// shards of an n-shard deployment, so batch tests provably span shards.
func splitSeeds(t *testing.T, n int) (int64, int64) {
	t.Helper()
	fpOf := func(seed int64) service.Fingerprint {
		req, err := service.DecodeScheduleRequest(bytes.NewReader(scheduleBody("ftsa", 1, seed)))
		if err != nil {
			t.Fatal(err)
		}
		return service.RequestFingerprint(req)
	}
	first := RouteFingerprint(fpOf(1), n)
	for seed := int64(2); seed < 64; seed++ {
		if RouteFingerprint(fpOf(seed), n) != first {
			return 1, seed
		}
	}
	t.Fatal("no seed in [2,64) routes away from seed 1; routing is suspiciously unbalanced")
	return 0, 0
}

// TestBatchSplitsAcrossShards sends a batch whose items provably live on
// different shards and checks the merged response: items in request order,
// each byte-identical to the standalone /schedule response, summary counters
// summed, and every owning shard's counters showing its sub-batch.
func TestBatchSplitsAcrossShards(t *testing.T) {
	const n = 2
	c, _ := newDeployment(t, n, service.Config{})
	seedA, seedB := splitSeeds(t, n)

	items := fmt.Sprintf(
		`{"scheduler": "ftsa", "epsilon": 1, "seed": %d},
		 {"scheduler": "ftsa", "epsilon": 1, "seed": %d},
		 {"scheduler": "ftsa", "epsilon": 1, "seed": %d}`, seedA, seedB, seedA)
	rec := do(c, http.MethodPost, "/schedule/batch", batchBody(items))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body.String())
	}
	var out service.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 3 || len(out.Items) != 3 {
		t.Fatalf("count=%d items=%d, want 3/3", out.Count, len(out.Items))
	}
	// Item 2 duplicates item 0: same bytes, served as the in-batch hit.
	if out.CacheMisses != 2 || out.CacheHits != 1 {
		t.Fatalf("misses=%d hits=%d, want 2/1", out.CacheMisses, out.CacheHits)
	}
	if !bytes.Equal(out.Items[0].Response, out.Items[2].Response) {
		t.Fatal("duplicate items returned different bytes")
	}
	for i, seed := range []int64{seedA, seedB, seedA} {
		single := do(c, http.MethodPost, "/schedule", scheduleBody("ftsa", 1, seed))
		if single.Code != http.StatusOK || single.Header().Get(service.CacheStatusHeader) != "hit" {
			t.Fatalf("standalone item %d after batch: %d cache=%q", i, single.Code, single.Header().Get(service.CacheStatusHeader))
		}
		want := bytes.TrimSuffix(single.Body.Bytes(), []byte("\n"))
		if !bytes.Equal(out.Items[i].Response, want) {
			t.Fatalf("item %d differs from standalone response", i)
		}
	}

	st := coordStats(t, c)
	var subBatches, batchItems uint64
	for _, s := range st.PerShard {
		subBatches += s.BatchRequests
		batchItems += s.BatchItems
	}
	if subBatches != 2 || batchItems != 3 {
		t.Fatalf("shards saw %d sub-batches with %d items, want 2 sub-batches / 3 items", subBatches, batchItems)
	}
	if st.Door.BatchRequests != 1 {
		t.Fatalf("door batch_requests = %d, want 1", st.Door.BatchRequests)
	}
}

// TestStatsConservationMixedSoak drives a mixed request sequence — schedule
// with repeats, evaluate, tune, cross-shard batches, malformed bodies — and
// asserts the aggregation arithmetic: merged counters conserve, additive
// counters equal the per-shard sums plus the door's rejections, and
// queue_high_water merges as max, not sum.
func TestStatsConservationMixedSoak(t *testing.T) {
	const n = 4
	c, _ := newDeployment(t, n, service.Config{})
	seedA, seedB := splitSeeds(t, n)

	var sent, wantDoor400 uint64
	for round := 0; round < 3; round++ {
		for seed := int64(0); seed < 6; seed++ {
			do(c, http.MethodPost, "/schedule", scheduleBody("ftsa", 1, seed))
			sent++
		}
		do(c, http.MethodPost, "/evaluate", evaluateBody(int64(round), 30))
		sent++
		do(c, http.MethodPost, "/tune", tuneBody(24))
		sent++
		rec := do(c, http.MethodPost, "/schedule/batch", batchBody(fmt.Sprintf(
			`{"scheduler": "ftsa", "epsilon": 1, "seed": %d},
			 {"scheduler": "mcftsa", "epsilon": 1, "seed": %d}`, seedA, seedB)))
		if rec.Code != http.StatusOK {
			t.Fatalf("batch round %d: %d %s", round, rec.Code, rec.Body.String())
		}
		sent += 2 // two batched logical requests
		do(c, http.MethodPost, "/schedule", []byte(`{"graph":`))
		sent++
		wantDoor400++
	}

	st := coordStats(t, c)
	m := st.Merged
	if m.Requests != sent {
		t.Fatalf("merged requests = %d, want %d", m.Requests, sent)
	}
	if served := m.CacheHits + m.CacheMisses + m.ClientErrors + m.InternalErrors; served != m.Requests {
		t.Fatalf("merged counters leak: hits %d + misses %d + 4xx %d + 5xx %d = %d, requests %d",
			m.CacheHits, m.CacheMisses, m.ClientErrors, m.InternalErrors, served, m.Requests)
	}
	if m.InternalErrors != 0 {
		t.Fatalf("internal errors under soak: %d", m.InternalErrors)
	}
	if st.Door.Rejected != wantDoor400 || m.ClientErrors != wantDoor400 {
		t.Fatalf("door rejected=%d merged client_errors=%d, want %d each", st.Door.Rejected, m.ClientErrors, wantDoor400)
	}

	// Additive counters must equal the per-shard sums (+ door rejections for
	// the two that fold door traffic in); high-water must be the max.
	var sum service.Stats
	maxHW := 0
	for _, s := range st.PerShard {
		sum.Requests += s.Requests
		sum.CacheHits += s.CacheHits
		sum.CacheMisses += s.CacheMisses
		sum.ClientErrors += s.ClientErrors
		sum.InternalErrors += s.InternalErrors
		sum.BatchItems += s.BatchItems
		if s.QueueHighWater > maxHW {
			maxHW = s.QueueHighWater
		}
		if served := s.CacheHits + s.CacheMisses + s.ClientErrors + s.InternalErrors; served != s.Requests {
			t.Fatalf("shard %q leaks: %d served of %d", s.Shard, served, s.Requests)
		}
	}
	if m.Requests != sum.Requests+st.Door.Rejected {
		t.Fatalf("merged requests %d != shard sum %d + door %d", m.Requests, sum.Requests, st.Door.Rejected)
	}
	if m.CacheHits != sum.CacheHits || m.CacheMisses != sum.CacheMisses {
		t.Fatalf("merged hits/misses %d/%d != shard sums %d/%d", m.CacheHits, m.CacheMisses, sum.CacheHits, sum.CacheMisses)
	}
	if m.ClientErrors != sum.ClientErrors+st.Door.Rejected {
		t.Fatalf("merged client_errors %d != shard sum %d + door %d", m.ClientErrors, sum.ClientErrors, st.Door.Rejected)
	}
	if m.BatchItems != sum.BatchItems {
		t.Fatalf("merged batch_items %d != shard sum %d", m.BatchItems, sum.BatchItems)
	}
	if m.QueueHighWater != maxHW {
		t.Fatalf("merged queue_high_water = %d, want the max %d (a sum of maxima measures nothing)", m.QueueHighWater, maxHW)
	}

	// Every shard took some traffic: the deterministic diamond workload is
	// small, but 4 shards × this mix must not leave a shard cold.
	for i, s := range st.PerShard {
		if s.Requests == 0 {
			t.Errorf("shard %d served nothing; routing may be degenerate", i)
		}
	}

	// Repeating the identical soak against a single server yields the same
	// serving outcome: the sharded deployment is behaviorally invisible.
	single := service.New(service.Config{})
	t.Cleanup(single.Close)
	for round := 0; round < 3; round++ {
		for seed := int64(0); seed < 6; seed++ {
			do(single, http.MethodPost, "/schedule", scheduleBody("ftsa", 1, seed))
		}
		do(single, http.MethodPost, "/evaluate", evaluateBody(int64(round), 30))
		do(single, http.MethodPost, "/tune", tuneBody(24))
		do(single, http.MethodPost, "/schedule/batch", batchBody(fmt.Sprintf(
			`{"scheduler": "ftsa", "epsilon": 1, "seed": %d},
			 {"scheduler": "mcftsa", "epsilon": 1, "seed": %d}`, seedA, seedB)))
		do(single, http.MethodPost, "/schedule", []byte(`{"graph":`))
	}
	rec := do(single, http.MethodGet, "/stats", nil)
	var ss service.Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &ss); err != nil {
		t.Fatal(err)
	}
	if m.Requests != ss.Requests || m.CacheHits != ss.CacheHits || m.CacheMisses != ss.CacheMisses ||
		m.ClientErrors != ss.ClientErrors || m.CacheEntries != ss.CacheEntries {
		t.Fatalf("merged view diverges from a single server under identical traffic:\nmerged: req=%d hit=%d miss=%d 4xx=%d entries=%d\nsingle: req=%d hit=%d miss=%d 4xx=%d entries=%d",
			m.Requests, m.CacheHits, m.CacheMisses, m.ClientErrors, m.CacheEntries,
			ss.Requests, ss.CacheHits, ss.CacheMisses, ss.ClientErrors, ss.CacheEntries)
	}
}

// TestHealthzAggregation: healthy shards → ok; any failing shard flips the
// deployment to 503.
func TestHealthzAggregation(t *testing.T) {
	c, _ := newDeployment(t, 2, service.Config{})
	rec := do(c, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"shards":2`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	})
	srv := service.New(service.Config{})
	t.Cleanup(srv.Close)
	degraded := New([]http.Handler{srv, bad}, Options{})
	rec = do(degraded, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"failing_shard":1`) {
		t.Fatalf("degraded healthz: %d %s", rec.Code, rec.Body.String())
	}
}

// TestProxyPassthrough runs a shard behind a real HTTP hop and checks the
// coordinator cannot tell: responses, headers and stats flow through.
func TestProxyPassthrough(t *testing.T) {
	srv := service.New(service.Config{})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	c := New([]http.Handler{&Proxy{Base: ts.URL}}, Options{})
	body := scheduleBody("ftsa", 1, 0)
	first := do(c, http.MethodPost, "/schedule", body)
	second := do(c, http.MethodPost, "/schedule", body)
	if first.Code != 200 || second.Code != 200 {
		t.Fatalf("proxied schedule: %d then %d", first.Code, second.Code)
	}
	if first.Header().Get(service.CacheStatusHeader) != "miss" ||
		second.Header().Get(service.CacheStatusHeader) != "hit" {
		t.Fatalf("proxied cache statuses: %q then %q",
			first.Header().Get(service.CacheStatusHeader), second.Header().Get(service.CacheStatusHeader))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("proxied hit returned different bytes")
	}
	st := coordStats(t, c)
	if st.Merged.Requests != 2 || st.Merged.CacheHits != 1 || st.Merged.CacheMisses != 1 {
		t.Fatalf("proxied stats: %+v", st.Merged)
	}
}
