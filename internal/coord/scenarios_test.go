package coord

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"ftsched/internal/service"
)

// adversarialEvaluateBody builds an /evaluate request that exercises both PR
// additions at once: an inline trace scenario and a worst_case search.
func adversarialEvaluateBody() []byte {
	return []byte(fmt.Sprintf(`{%s, "scheduler": "ftsa", "epsilon": 1,
	  "trials": 40,
	  "scenario": {"kind": "trace", "trace": {
	    "events": [{"proc": 0, "time": 0}, {"proc": 2, "time": 1, "group": "rack"}],
	    "resample": true}},
	  "eval_seed": 7, "worst_case": {"crashes": 1}}`, diamondInstance))
}

// The acceptance criterion of the trace + worst_case additions: the response
// bytes are invariant across 1, 2 and 4 shards (and equal to a single
// server's), hits and misses alike.
func TestTraceWorstCaseShardCountInvariant(t *testing.T) {
	single := service.New(service.Config{})
	t.Cleanup(single.Close)
	body := adversarialEvaluateBody()
	want := do(single, http.MethodPost, "/evaluate", body)
	if want.Code != http.StatusOK {
		t.Fatalf("single server: %d %s", want.Code, want.Body.String())
	}
	for _, n := range []int{1, 2, 4} {
		c, _ := newDeployment(t, n, service.Config{})
		miss := do(c, http.MethodPost, "/evaluate", body)
		if miss.Code != http.StatusOK {
			t.Fatalf("%d shards: %d %s", n, miss.Code, miss.Body.String())
		}
		if !bytes.Equal(miss.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("%d shards disagree with a single server:\n%s\nvs\n%s",
				n, miss.Body.String(), want.Body.String())
		}
		hit := do(c, http.MethodPost, "/evaluate", body)
		if got := hit.Header().Get(service.CacheStatusHeader); got != "hit" {
			t.Fatalf("%d shards: repeat request cache status %q, want hit", n, got)
		}
		if !bytes.Equal(hit.Body.Bytes(), want.Body.Bytes()) {
			t.Fatalf("%d shards: hit bytes differ from miss bytes", n)
		}
	}
}

// /scenarios is answered at the door, byte-identical to any shard's own
// response, without costing a shard request.
func TestScenariosServedAtTheDoor(t *testing.T) {
	single := service.New(service.Config{})
	t.Cleanup(single.Close)
	want := do(single, http.MethodGet, "/scenarios", nil)
	if want.Code != http.StatusOK {
		t.Fatalf("single server /scenarios: %d", want.Code)
	}
	c, shards := newDeployment(t, 3, service.Config{})
	got := do(c, http.MethodGet, "/scenarios", nil)
	if got.Code != http.StatusOK {
		t.Fatalf("coordinator /scenarios: %d %s", got.Code, got.Body.String())
	}
	if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
		t.Fatalf("door response differs from a shard's:\n%s\nvs\n%s",
			got.Body.String(), want.Body.String())
	}
	for i, sh := range shards {
		rec := do(sh, http.MethodGet, "/stats", nil)
		var st service.Stats
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.Requests != 0 {
			t.Fatalf("shard %d saw %d requests; /scenarios must not hop to a shard", i, st.Requests)
		}
	}
}
