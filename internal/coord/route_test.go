package coord

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"ftsched/internal/service"
)

// syntheticFingerprints derives n deterministic fingerprints from a seeded
// PRNG, standing in for the canonical request fingerprints real traffic
// produces.
func syntheticFingerprints(n int, seed int64) []service.Fingerprint {
	rng := rand.New(rand.NewSource(seed))
	fps := make([]service.Fingerprint, n)
	for i := range fps {
		binary.LittleEndian.PutUint64(fps[i][:8], rng.Uint64())
		binary.LittleEndian.PutUint64(fps[i][8:], rng.Uint64())
	}
	return fps
}

// TestRouteStable pins the property the whole design rests on: the route is a
// pure function of (fingerprint, shard count). The same fingerprint lands on
// the same shard on every call, and a single-shard deployment routes
// everything to shard 0.
func TestRouteStable(t *testing.T) {
	for _, fp := range syntheticFingerprints(1000, 11) {
		if got := RouteFingerprint(fp, 1); got != 0 {
			t.Fatalf("RouteFingerprint(%x, 1) = %d, want 0", fp, got)
		}
		for _, shards := range []int{2, 3, 4, 8} {
			first := RouteFingerprint(fp, shards)
			if first < 0 || first >= shards {
				t.Fatalf("RouteFingerprint(%x, %d) = %d, out of range", fp, shards, first)
			}
			if again := RouteFingerprint(fp, shards); again != first {
				t.Fatalf("RouteFingerprint(%x, %d) unstable: %d then %d", fp, shards, first, again)
			}
		}
	}
}

// TestRouteBalanced routes 10k synthetic fingerprints and runs a chi-square
// goodness-of-fit test against the uniform distribution for each shard count.
// The thresholds are the p=0.001 critical values for shards-1 degrees of
// freedom — with a deterministic seed this is a regression test, not a flake:
// the statistic is a fixed number and must stay below the bar.
func TestRouteBalanced(t *testing.T) {
	const samples = 10000
	fps := syntheticFingerprints(samples, 42)
	// p=0.001 critical values, dof = shards-1. Odd counts matter: the
	// index-absorbed-last bug this test guards against was invisible at
	// powers of two and catastrophic at 3 and 5.
	critical := map[int]float64{2: 10.83, 3: 13.82, 4: 16.27, 5: 18.47, 8: 24.32}
	for shards, bar := range critical {
		counts := make([]int, shards)
		for _, fp := range fps {
			counts[RouteFingerprint(fp, shards)]++
		}
		expected := float64(samples) / float64(shards)
		var chi2 float64
		for _, n := range counts {
			d := float64(n) - expected
			chi2 += d * d / expected
		}
		if chi2 > bar {
			t.Errorf("shards=%d: chi-square %.2f exceeds the p=0.001 bar %.2f (counts %v)", shards, chi2, bar, counts)
		}
	}
}

// TestRouteMinimalReshuffle pins the rendezvous-hashing property that makes
// scale-out cheap: growing a deployment from N to N+1 shards moves only the
// keys the new shard wins — every moved key moves TO shard N, never between
// surviving shards — and the moved fraction is close to the ideal 1/(N+1).
func TestRouteMinimalReshuffle(t *testing.T) {
	const samples = 10000
	fps := syntheticFingerprints(samples, 7)
	for _, n := range []int{1, 2, 3, 4, 7} {
		moved := 0
		for _, fp := range fps {
			before := RouteFingerprint(fp, n)
			after := RouteFingerprint(fp, n+1)
			if before == after {
				continue
			}
			if after != n {
				t.Fatalf("scale %d->%d moved %x between surviving shards: %d -> %d", n, n+1, fp, before, after)
			}
			moved++
		}
		ideal := float64(samples) / float64(n+1)
		if f := float64(moved); f < 0.8*ideal || f > 1.2*ideal {
			t.Errorf("scale %d->%d moved %d keys, want within 20%% of the ideal %.0f", n, n+1, moved, ideal)
		}
	}
}
