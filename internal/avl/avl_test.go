package avl

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int] { return New(func(a, b int) bool { return a < b }) }

func TestInsertDeleteContains(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 3, 8, 1, 4, 7, 9, 2, 6} {
		if !tr.Insert(k) {
			t.Fatalf("Insert(%d) = false", k)
		}
	}
	if tr.Insert(5) {
		t.Error("duplicate insert accepted")
	}
	if tr.Len() != 9 {
		t.Errorf("Len = %d", tr.Len())
	}
	for k := 1; k <= 9; k++ {
		if !tr.Contains(k) {
			t.Errorf("Contains(%d) = false", k)
		}
	}
	if tr.Contains(10) {
		t.Error("Contains(10) = true")
	}
	if !tr.Delete(5) {
		t.Error("Delete(5) = false")
	}
	if tr.Delete(5) {
		t.Error("second Delete(5) = true")
	}
	if tr.Contains(5) {
		t.Error("5 still present after delete")
	}
	if !tr.CheckInvariants() {
		t.Error("invariants violated")
	}
}

func TestMinMax(t *testing.T) {
	tr := intTree()
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty tree")
	}
	for _, k := range []int{42, 17, 99, 3} {
		tr.Insert(k)
	}
	if min, _ := tr.Min(); min != 3 {
		t.Errorf("Min = %d", min)
	}
	if max, _ := tr.Max(); max != 99 {
		t.Errorf("Max = %d", max)
	}
	if k, ok := tr.DeleteMin(); !ok || k != 3 {
		t.Errorf("DeleteMin = %d, %v", k, ok)
	}
	if k, ok := tr.DeleteMax(); !ok || k != 99 {
		t.Errorf("DeleteMax = %d, %v", k, ok)
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestKeysSorted(t *testing.T) {
	tr := intTree()
	rng := rand.New(rand.NewSource(1))
	want := rng.Perm(500)
	for _, k := range want {
		tr.Insert(k)
	}
	keys := tr.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Error("Keys not sorted")
	}
	if len(keys) != 500 {
		t.Errorf("len(Keys) = %d", len(keys))
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := intTree()
	for k := 0; k < 10; k++ {
		tr.Insert(k)
	}
	count := 0
	tr.Ascend(func(int) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Errorf("visited %d keys, want 4", count)
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := intTree()
	// Insert in sorted order — the adversarial case for naive BSTs.
	const n = 1 << 12
	for k := 0; k < n; k++ {
		tr.Insert(k)
	}
	// AVL height bound: 1.44 log2(n+2).
	if h := tr.Height(); h > 18 {
		t.Errorf("height %d too large for %d sorted inserts", h, n)
	}
	if !tr.CheckInvariants() {
		t.Error("invariants violated after sorted inserts")
	}
	for k := 0; k < n; k += 2 {
		tr.Delete(k)
	}
	if !tr.CheckInvariants() {
		t.Error("invariants violated after deletes")
	}
	if tr.Len() != n/2 {
		t.Errorf("Len = %d, want %d", tr.Len(), n/2)
	}
}

func TestPropInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := intTree()
		present := map[int]bool{}
		for op := 0; op < 300; op++ {
			k := rng.Intn(100)
			if rng.Float64() < 0.6 {
				ins := tr.Insert(k)
				if ins == present[k] {
					return false // Insert must succeed iff absent
				}
				present[k] = true
			} else {
				del := tr.Delete(k)
				if del != present[k] {
					return false // Delete must succeed iff present
				}
				delete(present, k)
			}
		}
		if tr.Len() != len(present) {
			return false
		}
		return tr.CheckInvariants()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFreeListPriorityOrder(t *testing.T) {
	l := NewFreeList()
	if _, ok := l.Head(); ok {
		t.Error("Head on empty list")
	}
	l.Push(Entry{Priority: 5, ID: 1})
	l.Push(Entry{Priority: 9, ID: 2})
	l.Push(Entry{Priority: 7, ID: 3})
	if l.Len() != 3 {
		t.Errorf("Len = %d", l.Len())
	}
	if h, _ := l.Head(); h.ID != 2 {
		t.Errorf("Head ID = %d, want 2 (highest priority)", h.ID)
	}
	h, ok := l.PopHead()
	if !ok || h.Priority != 9 {
		t.Errorf("PopHead = %+v", h)
	}
	if h, _ := l.PopHead(); h.ID != 3 {
		t.Errorf("second PopHead ID = %d, want 3", h.ID)
	}
	if !l.CheckInvariants() {
		t.Error("invariants violated")
	}
}

func TestFreeListTieBreaking(t *testing.T) {
	l := NewFreeList()
	// Equal priorities: the larger tie wins; equal ties fall back to ID.
	l.Push(Entry{Priority: 5, Tie: 1, ID: 1})
	l.Push(Entry{Priority: 5, Tie: 9, ID: 2})
	l.Push(Entry{Priority: 5, Tie: 9, ID: 3})
	if h, _ := l.Head(); h.ID != 3 {
		t.Errorf("Head = %+v, want ID 3", h)
	}
	if !l.Remove(Entry{Priority: 5, Tie: 9, ID: 3}) {
		t.Error("Remove failed")
	}
	if h, _ := l.Head(); h.ID != 2 {
		t.Errorf("Head after remove = %+v, want ID 2", h)
	}
	if l.Remove(Entry{Priority: 5, Tie: 9, ID: 3}) {
		t.Error("Remove of absent entry succeeded")
	}
}

func TestFreeListHeightBound(t *testing.T) {
	l := NewFreeList()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1024; i++ {
		l.Push(Entry{Priority: rng.Float64(), Tie: rng.Uint64(), ID: i})
	}
	if h := l.Height(); h > 16 {
		t.Errorf("height %d exceeds AVL bound for 1024 entries", h)
	}
}
