package avl

import (
	"math/rand"
	"testing"
)

func BenchmarkInsertSequential(b *testing.B) {
	tr := intTree()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(i)
	}
}

func BenchmarkInsertDeleteRandom(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := intTree()
	for i := 0; i < 4096; i++ {
		tr.Insert(rng.Int())
	}
	keys := rng.Perm(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		tr.Insert(k)
		tr.Delete(k)
	}
}

// BenchmarkFreeListVsLinear probes the paper's AVL choice: the same α
// workload (push/pop-max over ω entries) against a naive unsorted slice.
// Measured verdict: at the paper's widths (ω of a few hundred) the O(ω)
// slice scan is cache-friendly enough to match or beat the pointer-chasing
// AVL; the asymptotic advantage only matters for much wider graphs. The AVL
// stays for fidelity to Section 4.1, and its cost is negligible either way
// (see DESIGN.md §6).
func BenchmarkFreeListVsLinear(b *testing.B) {
	const width = 256
	rng := rand.New(rand.NewSource(3))
	prios := make([]float64, 4*width)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.Run("avl", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			l := NewFreeList()
			for t := 0; t < width; t++ {
				l.Push(Entry{Priority: prios[t], ID: t})
			}
			id := width
			for l.Len() > 0 {
				l.PopHead()
				if id < len(prios) {
					l.Push(Entry{Priority: prios[id], ID: id})
					id++
				}
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			list := make([]Entry, 0, width)
			for t := 0; t < width; t++ {
				list = append(list, Entry{Priority: prios[t], ID: t})
			}
			id := width
			for len(list) > 0 {
				// O(ω) max scan + swap-delete.
				best := 0
				for j := 1; j < len(list); j++ {
					if list[j].Priority > list[best].Priority {
						best = j
					}
				}
				list[best] = list[len(list)-1]
				list = list[:len(list)-1]
				if id < len(prios) {
					list = append(list, Entry{Priority: prios[id], ID: id})
					id++
				}
			}
		}
	})
}

// BenchmarkFreeListSchedulerPattern mimics the scheduler's α usage: push a
// batch of free tasks, repeatedly pop the head and push successors.
func BenchmarkFreeListSchedulerPattern(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewFreeList()
		for t := 0; t < 64; t++ {
			l.Push(Entry{Priority: rng.Float64(), Tie: rng.Uint64(), ID: t})
		}
		id := 64
		for l.Len() > 0 {
			l.PopHead()
			if id < 128 {
				l.Push(Entry{Priority: rng.Float64(), Tie: rng.Uint64(), ID: id})
				id++
			}
		}
	}
}
