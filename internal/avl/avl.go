package avl

// Tree is an AVL tree holding keys of type K ordered by the less function.
// Duplicate keys (less(a,b) and less(b,a) both false) are rejected by Insert.
// The zero Tree is not usable; call New.
type Tree[K any] struct {
	less func(a, b K) bool
	root *node[K]
	size int
}

type node[K any] struct {
	key         K
	left, right *node[K]
	height      int8
}

// New returns an empty AVL tree ordered by less.
func New[K any](less func(a, b K) bool) *Tree[K] {
	return &Tree[K]{less: less}
}

// Len returns the number of keys stored.
func (t *Tree[K]) Len() int { return t.size }

func height[K any](n *node[K]) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func update[K any](n *node[K]) {
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		n.height = hl + 1
	} else {
		n.height = hr + 1
	}
}

func balanceFactor[K any](n *node[K]) int {
	return int(height(n.left)) - int(height(n.right))
}

func rotateRight[K any](y *node[K]) *node[K] {
	x := y.left
	y.left = x.right
	x.right = y
	update(y)
	update(x)
	return x
}

func rotateLeft[K any](x *node[K]) *node[K] {
	y := x.right
	x.right = y.left
	y.left = x
	update(x)
	update(y)
	return y
}

func rebalance[K any](n *node[K]) *node[K] {
	update(n)
	bf := balanceFactor(n)
	switch {
	case bf > 1:
		if balanceFactor(n.left) < 0 {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if balanceFactor(n.right) > 0 {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// Insert adds key to the tree. It reports false (and leaves the tree
// unchanged) if an equal key is already present.
func (t *Tree[K]) Insert(key K) bool {
	var inserted bool
	t.root, inserted = t.insert(t.root, key)
	if inserted {
		t.size++
	}
	return inserted
}

func (t *Tree[K]) insert(n *node[K], key K) (*node[K], bool) {
	if n == nil {
		return &node[K]{key: key, height: 1}, true
	}
	var ok bool
	switch {
	case t.less(key, n.key):
		n.left, ok = t.insert(n.left, key)
	case t.less(n.key, key):
		n.right, ok = t.insert(n.right, key)
	default:
		return n, false
	}
	if !ok {
		return n, false
	}
	return rebalance(n), true
}

// Delete removes key from the tree, reporting whether it was present.
func (t *Tree[K]) Delete(key K) bool {
	var deleted bool
	t.root, deleted = t.delete(t.root, key)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[K]) delete(n *node[K], key K) (*node[K], bool) {
	if n == nil {
		return nil, false
	}
	var ok bool
	switch {
	case t.less(key, n.key):
		n.left, ok = t.delete(n.left, key)
	case t.less(n.key, key):
		n.right, ok = t.delete(n.right, key)
	default:
		ok = true
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			// Replace with in-order successor.
			succ := n.right
			for succ.left != nil {
				succ = succ.left
			}
			n.key = succ.key
			n.right, _ = t.delete(n.right, succ.key)
		}
	}
	if !ok {
		return n, false
	}
	return rebalance(n), true
}

// Contains reports whether key is present.
func (t *Tree[K]) Contains(key K) bool {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return true
		}
	}
	return false
}

// Min returns the smallest key; ok is false for an empty tree.
func (t *Tree[K]) Min() (key K, ok bool) {
	n := t.root
	if n == nil {
		return key, false
	}
	for n.left != nil {
		n = n.left
	}
	return n.key, true
}

// Max returns the largest key; ok is false for an empty tree.
func (t *Tree[K]) Max() (key K, ok bool) {
	n := t.root
	if n == nil {
		return key, false
	}
	for n.right != nil {
		n = n.right
	}
	return n.key, true
}

// DeleteMin removes and returns the smallest key.
func (t *Tree[K]) DeleteMin() (key K, ok bool) {
	key, ok = t.Min()
	if ok {
		t.Delete(key)
	}
	return key, ok
}

// DeleteMax removes and returns the largest key.
func (t *Tree[K]) DeleteMax() (key K, ok bool) {
	key, ok = t.Max()
	if ok {
		t.Delete(key)
	}
	return key, ok
}

// Ascend calls fn on every key in increasing order until fn returns false.
func (t *Tree[K]) Ascend(fn func(key K) bool) {
	var walk func(n *node[K]) bool
	walk = func(n *node[K]) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && fn(n.key) && walk(n.right)
	}
	walk(t.root)
}

// Keys returns all keys in increasing order.
func (t *Tree[K]) Keys() []K {
	out := make([]K, 0, t.size)
	t.Ascend(func(k K) bool { out = append(out, k); return true })
	return out
}

// Height returns the height of the tree (0 for empty).
func (t *Tree[K]) Height() int { return int(height(t.root)) }

// CheckInvariants verifies the AVL balance and ordering invariants; it is
// exported for tests and returns false on the first violation.
func (t *Tree[K]) CheckInvariants() bool {
	ok := true
	var walk func(n *node[K]) int8
	walk = func(n *node[K]) int8 {
		if n == nil || !ok {
			return 0
		}
		hl, hr := walk(n.left), walk(n.right)
		want := hl
		if hr > hl {
			want = hr
		}
		want++
		if n.height != want {
			ok = false
		}
		if bf := int(hl) - int(hr); bf < -1 || bf > 1 {
			ok = false
		}
		if n.left != nil && !t.less(n.left.key, n.key) {
			ok = false
		}
		if n.right != nil && !t.less(n.key, n.right.key) {
			ok = false
		}
		return want
	}
	walk(t.root)
	// Size agreement.
	count := 0
	t.Ascend(func(K) bool { count++; return true })
	return ok && count == t.size
}
