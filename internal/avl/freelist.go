package avl

// Entry is one element of a FreeList: an integer task ID with a scheduling
// priority. Ties between equal priorities are broken by a caller-supplied
// tie value (the schedulers draw it at random, matching the paper's "ties
// are broken randomly"); remaining ties fall back to the task ID so the
// ordering is total.
type Entry struct {
	Priority float64
	Tie      uint64
	ID       int
}

// FreeList is the priority list α of Section 4.1: a balanced search tree of
// free tasks from which H(α), the highest-priority task, is repeatedly
// extracted. All operations are O(log n).
type FreeList struct {
	tree *Tree[Entry]
}

// NewFreeList returns an empty priority list.
func NewFreeList() *FreeList {
	return &FreeList{tree: New(func(a, b Entry) bool {
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		if a.Tie != b.Tie {
			return a.Tie < b.Tie
		}
		return a.ID < b.ID
	})}
}

// Len returns |α|.
func (l *FreeList) Len() int { return l.tree.Len() }

// Push inserts an entry; it reports false if an identical entry is present.
func (l *FreeList) Push(e Entry) bool { return l.tree.Insert(e) }

// Remove deletes an entry previously pushed; it reports whether it existed.
func (l *FreeList) Remove(e Entry) bool { return l.tree.Delete(e) }

// Head returns H(α), the entry with the highest priority, without removing
// it; ok is false when the list is empty.
func (l *FreeList) Head() (Entry, bool) { return l.tree.Max() }

// PopHead removes and returns H(α).
func (l *FreeList) PopHead() (Entry, bool) { return l.tree.DeleteMax() }

// Height exposes the underlying tree height, for tests asserting the
// O(log ω) bound.
func (l *FreeList) Height() int { return l.tree.Height() }

// CheckInvariants verifies the underlying AVL invariants (tests only).
func (l *FreeList) CheckInvariants() bool { return l.tree.CheckInvariants() }
