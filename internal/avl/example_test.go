package avl_test

import (
	"fmt"

	"ftsched/internal/avl"
)

// ExampleTree shows the generic ordered tree.
func ExampleTree() {
	tr := avl.New(func(a, b string) bool { return a < b })
	for _, s := range []string{"pear", "apple", "plum", "fig"} {
		tr.Insert(s)
	}
	tr.Delete("plum")
	min, _ := tr.Min()
	max, _ := tr.Max()
	fmt.Println(tr.Len(), min, max)
	// Output:
	// 3 apple pear
}

// ExampleFreeList demonstrates the scheduler's priority list α: H(α) always
// returns the highest-priority free task.
func ExampleFreeList() {
	l := avl.NewFreeList()
	l.Push(avl.Entry{Priority: 41.5, ID: 7})
	l.Push(avl.Entry{Priority: 99.0, ID: 2})
	l.Push(avl.Entry{Priority: 63.2, ID: 5})

	for l.Len() > 0 {
		e, _ := l.PopHead()
		fmt.Printf("task %d (priority %.1f)\n", e.ID, e.Priority)
	}
	// Output:
	// task 2 (priority 99.0)
	// task 5 (priority 63.2)
	// task 7 (priority 41.5)
}
