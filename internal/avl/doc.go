// Package avl implements an AVL balanced binary search tree. The paper's
// scheduler (Section 4.1) maintains its free-task priority list α as an AVL
// tree with O(log ω) insertion, deletion and head lookup, where ω is the DAG
// width; this package provides that structure, plus a scheduling-oriented
// façade (FreeList) keyed by (priority, tie-break).
//
// Tree is generic over the key type and fully ordered by a caller-supplied
// less function; FreeList wraps it with the scheduler's entry shape: entries
// order by priority first, then by a random tie-break value (the paper
// breaks priority ties randomly), then by task ID for determinism.
package avl
