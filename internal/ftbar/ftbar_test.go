package ftbar

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

func instance(t *testing.T, seed int64, procs int) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 30, 50
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFTBARValidates(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		for _, npf := range []int{0, 1, 2, 5} {
			inst := instance(t, seed, 20)
			s, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: npf})
			if err != nil {
				t.Fatalf("seed %d Npf=%d: %v", seed, npf, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("seed %d Npf=%d: Validate: %v", seed, npf, err)
			}
			if lb, ub := s.LowerBound(), s.UpperBound(); ub < lb-1e-9 {
				t.Fatalf("seed %d Npf=%d: bounds inverted (%g > %g)", seed, npf, lb, ub)
			}
			for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
				if got := len(s.Replicas(dag.TaskID(tsk))); got < npf+1 {
					t.Fatalf("seed %d Npf=%d: task %d has %d replicas", seed, npf, tsk, got)
				}
			}
		}
	}
}

func TestFTBARSurvivesAllCrashSets(t *testing.T) {
	inst := instance(t, 4, 6)
	const npf = 2
	s, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: npf})
	if err != nil {
		t.Fatal(err)
	}
	m := inst.Platform.NumProcs()
	for mask := 0; mask < 1<<m; mask++ {
		var crashed []platform.ProcID
		for j := 0; j < m; j++ {
			if mask&(1<<j) != 0 {
				crashed = append(crashed, platform.ProcID(j))
			}
		}
		if len(crashed) > npf {
			continue
		}
		sc, err := sim.CrashAtZero(m, crashed...)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(s, sc, nil); err != nil {
			t.Errorf("FTBAR failed under crash set %v: %v", crashed, err)
		}
	}
}

func TestFTBARDuplicationOnlyAddsReplicas(t *testing.T) {
	inst := instance(t, 7, 10)
	with, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: 2})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: 2, DisableDuplication: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := without.Validate(); err != nil {
		t.Fatalf("no-duplication schedule invalid: %v", err)
	}
	countReplicas := func(s interface {
		Replicas(dag.TaskID) []interface{}
	}) int {
		return 0
	}
	_ = countReplicas
	totWith, totWithout := 0, 0
	for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
		totWith += len(with.Replicas(dag.TaskID(tsk)))
		totWithout += len(without.Replicas(dag.TaskID(tsk)))
	}
	if totWithout != inst.Graph.NumTasks()*3 {
		t.Errorf("no-duplication run should have exactly Npf+1 replicas per task, got %d total", totWithout)
	}
	if totWith < totWithout {
		t.Errorf("duplication removed replicas: %d < %d", totWith, totWithout)
	}
}

func TestFTSAOutperformsFTBAROnAverage(t *testing.T) {
	// The paper's headline comparison: FTSA achieves a lower (better) lower
	// bound than FTBAR. Check on averages over a batch of random instances
	// (individual instances may go either way).
	var ftsaSum, ftbarSum float64
	const trials = 20
	for seed := int64(1); seed <= trials; seed++ {
		inst := instance(t, seed, 20)
		a, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: 2})
		if err != nil {
			t.Fatal(err)
		}
		ftsaSum += a.LowerBound()
		ftbarSum += b.LowerBound()
	}
	if ftsaSum >= ftbarSum {
		t.Errorf("FTSA mean lower bound %g should beat FTBAR %g", ftsaSum/trials, ftbarSum/trials)
	}
}

func TestFTBARNpfTooLarge(t *testing.T) {
	inst := instance(t, 1, 4)
	if _, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: 4}); err == nil {
		t.Fatal("want error for Npf+1 > m")
	}
}

func TestFTBARDeterministicWithoutRng(t *testing.T) {
	inst := instance(t, 9, 8)
	a, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{Npf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.LowerBound() != b.LowerBound() || a.UpperBound() != b.UpperBound() {
		t.Errorf("non-deterministic: (%g,%g) vs (%g,%g)", a.LowerBound(), a.UpperBound(), b.LowerBound(), b.UpperBound())
	}
}
