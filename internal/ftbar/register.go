package ftbar

import (
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// runner adapts this package to the sched registry's uniform interface.
type runner struct{}

func (runner) Name() string { return "ftbar" }

func (runner) Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt sched.RunOptions) (*sched.Schedule, error) {
	o := Options{Npf: opt.Epsilon, Rng: opt.Rng, BottomLevels: opt.BottomLevels}
	if opt.Policy == "noduplication" {
		o.DisableDuplication = true
	}
	return Schedule(g, p, cm, o)
}

func init() {
	sched.Register(sched.Registration{
		Scheduler:     runner{},
		Description:   "re-implemented comparison baseline of Girault et al. (Section 5): most-urgent-pair selection with Minimize-Start-Time duplication",
		FaultTolerant: true,
		Policies:      []string{"noduplication"},
	})
}
