// Package ftbar re-implements the comparison baseline of the paper: FTBAR
// (Fault Tolerance Based Active Replication; Girault, Kalla, Sighireanu,
// Sorel, DSN'03), following the description in Section 5 of the paper.
//
// FTBAR is a list-scheduling heuristic driven by the *schedule pressure*
// cost function
//
//	σ(n)(ti,pj) = S(n)(ti,pj) + s(ti) − R(n−1)
//
// where S(n)(ti,pj) is the earliest start time of ti on pj given the current
// partial schedule, s(ti) the latest start time of ti measured bottom-up
// (computed here, as in the original, from average execution and
// communication costs), and R(n−1) the schedule length at the previous step.
// At every step FTBAR evaluates σ for *every* free task on *every*
// processor, keeps for each task the Npf+1 processors of minimum pressure,
// selects the most urgent (maximum pressure) task-processor pair, and
// schedules that task on its Npf+1 processors. The recursive
// Minimize-Start-Time procedure of Ahmad and Kwok is then applied to reduce
// the start time of the selected task by duplicating critical predecessors
// onto the chosen processors.
//
// The full per-step rescan of all free tasks (instead of FTSA's O(log ω)
// AVL head extraction) is what gives FTBAR its O(P·N³) running time, which
// Table 1 of the paper measures.
package ftbar
