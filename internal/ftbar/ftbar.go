package ftbar

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/kernel"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Options configures an FTBAR run.
type Options struct {
	// Npf is the number of fail-stop processor failures to tolerate; every
	// task is scheduled on Npf+1 distinct processors (plus any duplicates
	// added by Minimize-Start-Time).
	Npf int
	// Rng breaks urgency ties randomly (the paper: "ties are broken
	// randomly"); nil makes tie-breaking deterministic by task ID.
	Rng *rand.Rand
	// DisableDuplication turns off the Minimize-Start-Time procedure
	// (ablation knob; the faithful baseline keeps it on).
	DisableDuplication bool
	// BottomLevels, when non-nil, supplies the precomputed static bottom
	// levels (sched.AvgBottomLevels) used as s(ti) instead of recomputing
	// them; callers scheduling one instance under several schedulers share
	// the slice. Read-only to the scheduler.
	BottomLevels []float64
}

// Schedule runs FTBAR and returns a fault-tolerant schedule with the full
// communication pattern.
func Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options) (*sched.Schedule, error) {
	m := p.NumProcs()
	if opt.Npf < 0 || opt.Npf+1 > m {
		return nil, fmt.Errorf("ftbar: Npf=%d needs %d processors, platform has %d", opt.Npf, opt.Npf+1, m)
	}
	f, err := g.Freeze()
	if err != nil {
		return nil, err
	}
	s, err := sched.New(g, p, cm, opt.Npf, sched.PatternAll, "FTBAR")
	if err != nil {
		return nil, err
	}
	// s(ti): latest start-time measured bottom-up; as in the σ definition we
	// use the average-cost bottom level (which includes ti's own execution —
	// a constant shift per task that leaves both argmin and argmax intact).
	bl, err := sched.ResolveBottomLevels(g, cm, p, opt.BottomLevels)
	if err != nil {
		return nil, err
	}
	st := &state{
		f: f, p: p, cm: cm, opt: opt, s: s,
		bl:      bl,
		board:   kernel.NewBoard(m, false),
		unsched: make([]int, g.NumTasks()),
	}
	defer st.board.Release()
	for t := 0; t < g.NumTasks(); t++ {
		st.unsched[t] = f.InDegree(dag.TaskID(t))
		if st.unsched[t] == 0 {
			st.free.Add(dag.TaskID(t))
		}
	}
	for st.free.Len() > 0 {
		if err := st.step(); err != nil {
			return nil, err
		}
	}
	if !s.Complete() {
		return nil, dag.ErrCycle
	}
	return s, nil
}

type state struct {
	f   *dag.Flat // frozen CSR view; all adjacency walks go through it
	p   *platform.Platform
	cm  *platform.CostModel
	opt Options
	s   *sched.Schedule

	bl []float64
	// board carries the shared per-processor ready times and arrival-window
	// scratch (kernel); the Minimize-Start-Time duplication advances its
	// ready times directly.
	board    *kernel.Board
	unsched  []int
	free     kernel.Set
	makespan float64 // R(n−1)
}

// procChoice is one candidate (processor, pressure) pair for a task.
type procChoice struct {
	proc     platform.ProcID
	pressure float64
}

// step performs one FTBAR iteration: global pressure scan, most-urgent pair
// selection, optional duplication, placement.
func (st *state) step() error {
	type taskEval struct {
		task    dag.TaskID
		chosen  []procChoice // Npf+1 minimum-pressure processors
		urgency float64      // max pressure within chosen
	}
	k := st.opt.Npf + 1
	m := st.p.NumProcs()
	evals := make([]taskEval, 0, st.free.Len())
	for _, t := range st.free.Tasks() {
		st.board.Arrivals(st.f, st.p, st.s, t)
		choices := make([]procChoice, 0, m)
		for j := 0; j < m; j++ {
			pj := platform.ProcID(j)
			est := st.board.StartMin(j, st.board.ArrMin[j], 0)
			choices = append(choices, procChoice{proc: pj, pressure: est + st.bl[t] - st.makespan})
		}
		sort.Slice(choices, func(a, b int) bool {
			if choices[a].pressure != choices[b].pressure {
				return choices[a].pressure < choices[b].pressure
			}
			return choices[a].proc < choices[b].proc
		})
		chosen := choices[:k]
		urg := chosen[0].pressure
		for _, c := range chosen[1:] {
			if c.pressure > urg {
				urg = c.pressure
			}
		}
		evals = append(evals, taskEval{task: t, chosen: append([]procChoice(nil), chosen...), urgency: urg})
	}
	// Most urgent pair: maximum pressure among the per-task best sets.
	best := 0
	for i := 1; i < len(evals); i++ {
		switch {
		case evals[i].urgency > evals[best].urgency:
			best = i
		case evals[i].urgency == evals[best].urgency && st.opt.Rng != nil && st.opt.Rng.Intn(2) == 0:
			best = i
		}
	}
	sel := evals[best]
	t := sel.task

	if !st.opt.DisableDuplication {
		for _, c := range sel.chosen {
			st.minimizeStartTime(t, c.proc)
		}
	}

	// Recompute arrivals after any duplication and place the replicas.
	st.board.Arrivals(st.f, st.p, st.s, t)
	reps := make([]sched.Replica, 0, k)
	for i, c := range sel.chosen {
		pj := c.proc
		e := st.cm.Cost(t, pj)
		sMin := st.board.StartMin(int(pj), st.board.ArrMin[pj], e)
		sMax := st.board.StartMax(int(pj), st.board.ArrMax[pj])
		reps = append(reps, sched.Replica{
			Task: t, Copy: i, Proc: pj,
			StartMin: sMin, FinishMin: sMin + e,
			StartMax: sMax, FinishMax: sMax + e,
		})
	}
	if err := st.s.Place(t, reps); err != nil {
		return err
	}
	st.board.Commit(reps)
	for _, r := range reps {
		if r.FinishMin > st.makespan {
			st.makespan = r.FinishMin
		}
	}
	// Release successors and remove t from the free list.
	st.free.Remove(t)
	for _, sRaw := range st.f.SuccIDs(t) {
		se := dag.TaskID(sRaw)
		st.unsched[se]--
		if st.unsched[se] == 0 {
			st.free.Add(se)
		}
	}
	return nil
}

// mstDepth bounds the Minimize-Start-Time recursion. The original procedure
// recurses along critical-predecessor chains; four levels reproduce its
// cost/benefit profile (and its super-linear running-time growth, Table 1)
// without unbounded duplication.
const mstDepth = 4

// minimizeStartTime implements the recursive Ahmad–Kwok procedure: while the
// start of t on proc is dominated by a remote predecessor message, first try
// to improve that predecessor's own inputs on proc (recursively), then
// duplicate the predecessor onto proc if the duplicate strictly reduces the
// arrival of its data. Duplicates committed by deeper levels persist even if
// the shallower duplication is rejected — the original heuristic has the
// same side effect, and it contributes to FTBAR's larger communication and
// occupancy footprint.
func (st *state) minimizeStartTime(t dag.TaskID, proc platform.ProcID) {
	st.reduceArrival(t, proc, mstDepth)
}

func (st *state) reduceArrival(t dag.TaskID, proc platform.ProcID, depth int) {
	if depth <= 0 {
		return
	}
	preds := st.f.PredIDs(t)
	vols := st.f.PredVolumes(t)
	for iter := 0; iter < len(preds); iter++ {
		// Find the predecessor whose message determines t's arrival on proc.
		critical := dag.TaskID(-1)
		criticalArr := 0.0
		for i, predRaw := range preds {
			pe := dag.TaskID(predRaw)
			eMin, _ := sched.ArrivalWindow(st.p, st.s.Replicas(pe), vols[i], proc)
			if eMin > criticalArr {
				criticalArr = eMin
				critical = pe
			}
		}
		if critical < 0 {
			return // entry task
		}
		// Already local? Nothing to gain.
		local := false
		for _, r := range st.s.Replicas(critical) {
			if r.Proc == proc {
				local = true
				break
			}
		}
		if local {
			return
		}
		// Recursively pull the critical predecessor's own inputs onto proc
		// so the duplicate below starts as early as possible.
		st.reduceArrival(critical, proc, depth-1)
		// Earliest the duplicate itself could run on proc.
		dupArrMin, dupArrMax := 0.0, 0.0
		cPreds := st.f.PredIDs(critical)
		cVols := st.f.PredVolumes(critical)
		for i, ppRaw := range cPreds {
			eMin, eMax := sched.ArrivalWindow(st.p, st.s.Replicas(dag.TaskID(ppRaw)), cVols[i], proc)
			if eMin > dupArrMin {
				dupArrMin = eMin
			}
			if eMax > dupArrMax {
				dupArrMax = eMax
			}
		}
		e := st.cm.Cost(critical, proc)
		dupStartMin := math.Max(dupArrMin, st.board.ReadyMin[proc])
		dupFinishMin := dupStartMin + e
		if dupFinishMin >= criticalArr {
			return // duplication does not help
		}
		dupStartMax := math.Max(dupArrMax, st.board.ReadyMax[proc])
		if err := st.s.AddDuplicate(critical, sched.Replica{
			Task: critical, Proc: proc,
			StartMin: dupStartMin, FinishMin: dupFinishMin,
			StartMax: dupStartMax, FinishMax: dupStartMax + e,
		}); err != nil {
			return
		}
		st.board.ReadyMin[proc] = dupFinishMin
		st.board.ReadyMax[proc] = dupStartMax + e
		if dupFinishMin > st.makespan {
			st.makespan = dupFinishMin
		}
	}
}
