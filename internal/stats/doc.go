// Package stats provides the statistical toolkit the experiment layer
// aggregates with: streaming accumulators for mean/variance/extrema and
// named (x, accumulator) series.
//
// Accumulator uses Welford's online algorithm, so it is numerically stable
// over campaigns of arbitrary length, and reports mean, unbiased variance,
// standard error and a normal-approximation 95% confidence interval — the
// paper averages 60 random graphs per figure point, where the normal
// approximation is adequate. Series binds accumulators to x positions
// (granularities) to form one curve of a figure.
//
// Determinism note: Welford updates are order-sensitive in the last few
// ulps, so the campaign engine feeds samples in canonical cell order; given
// the same samples in the same order, the summary statistics are
// bit-identical.
package stats
