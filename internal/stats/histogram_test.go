package stats

import (
	"math/rand"
	"testing"
)

func TestHistogramBucketMonotone(t *testing.T) {
	// Bucket index and bucket upper bound must both be monotone in the
	// value, and the upper bound must never be below the value it covers.
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 31, 32, 33, 63, 64, 100, 1000,
		4095, 4096, 1 << 20, 1<<20 + 7, 1 << 40, 1<<62 + 12345} {
		idx := histBucket(v)
		if idx < prev {
			t.Fatalf("histBucket(%d) = %d, below previous bucket %d", v, idx, prev)
		}
		prev = idx
		if up := histUpper(idx); up < v {
			t.Errorf("histUpper(histBucket(%d)) = %d, below the value", v, up)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	// The reported quantile must sit within 1/16 relative error above the
	// exact order statistic (and never below it).
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	values := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 2e6) // exponential around 2ms in ns
		h.Record(v)
		values = append(values, v)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		exact := exactQuantile(values, q)
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%g: histogram %d below exact %d", q, got, exact)
		}
		if float64(got) > float64(exact)*(1+1.0/16)+1 {
			t.Errorf("q=%g: histogram %d more than 1/16 above exact %d", q, got, exact)
		}
	}
	if h.Quantile(0) != exactQuantile(values, 0) {
		t.Errorf("Quantile(0) = %d, want exact min %d", h.Quantile(0), exactQuantile(values, 0))
	}
	if h.Quantile(1) != exactQuantile(values, 1) {
		t.Errorf("Quantile(1) = %d, want exact max %d", h.Quantile(1), exactQuantile(values, 1))
	}
}

func exactQuantile(values []int64, q float64) int64 {
	sorted := append([]int64(nil), values...)
	for i := 1; i < len(sorted); i++ { // insertion sort keeps the test dependency-free
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestHistogramMergeProperty is the merge property test: splitting one
// interleaved stream across any number of histograms and merging must
// reproduce the single-stream quantiles, counts, sum and extremes exactly.
func TestHistogramMergeProperty(t *testing.T) {
	for _, parts := range []int{2, 3, 8} {
		rng := rand.New(rand.NewSource(int64(100 + parts)))
		var single Histogram
		shards := make([]Histogram, parts)
		for i := 0; i < 20000; i++ {
			v := int64(rng.ExpFloat64() * 1e6)
			if rng.Intn(100) == 0 {
				v *= 500 // heavy tail
			}
			single.Record(v)
			// Interleave: round-robin with a random skew.
			shards[(i+rng.Intn(parts))%parts].Record(v)
		}
		var merged Histogram
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if merged.Count() != single.Count() {
			t.Fatalf("parts=%d: merged count %d != single %d", parts, merged.Count(), single.Count())
		}
		if merged.Min() != single.Min() || merged.Max() != single.Max() {
			t.Fatalf("parts=%d: merged extremes [%d,%d] != single [%d,%d]",
				parts, merged.Min(), merged.Max(), single.Min(), single.Max())
		}
		if merged.Mean() != single.Mean() {
			t.Fatalf("parts=%d: merged mean %g != single %g", parts, merged.Mean(), single.Mean())
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			if m, s := merged.Quantile(q), single.Quantile(q); m != s {
				t.Errorf("parts=%d q=%g: merged %d != single %d", parts, q, m, s)
			}
		}
	}
}

func TestHistogramMergeOrderIndependent(t *testing.T) {
	var a, b, ab, ba Histogram
	for i := int64(0); i < 1000; i++ {
		a.Record(i * 997 % 50000)
		b.Record(i * 31 % 2000000)
	}
	ab.Merge(&a)
	ab.Merge(&b)
	ba.Merge(&b)
	ba.Merge(&a)
	if ab != ba {
		t.Fatal("merge is not commutative")
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Merge(nil) // must not panic
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative samples must clamp to 0, got min=%d max=%d count=%d",
			h.Min(), h.Max(), h.Count())
	}
}
