package stats

import (
	"math"
	"testing"
)

func TestWilsonBasics(t *testing.T) {
	// Degenerate inputs cover the whole range.
	if lo, hi := Wilson(0, 0, 1.96); lo != 0 || hi != 1 {
		t.Fatalf("n=0: [%g,%g], want [0,1]", lo, hi)
	}
	// The interval always contains the point estimate and stays in [0,1].
	for _, tc := range []struct{ s, n int }{
		{0, 10}, {10, 10}, {1, 10}, {9, 10}, {50, 100}, {997, 1000},
	} {
		lo, hi := Wilson(tc.s, tc.n, 1.96)
		p := float64(tc.s) / float64(tc.n)
		if lo < 0 || hi > 1 || lo > hi {
			t.Fatalf("Wilson(%d,%d) = [%g,%g] malformed", tc.s, tc.n, lo, hi)
		}
		if p < lo-1e-12 || p > hi+1e-12 {
			t.Fatalf("Wilson(%d,%d) = [%g,%g] excludes p̂=%g", tc.s, tc.n, lo, hi, p)
		}
	}
	// Unlike the naive normal interval, all-successes still admits doubt.
	lo, hi := Wilson(20, 20, 1.96)
	if hi != 1 {
		t.Fatalf("20/20: hi = %g, want 1", hi)
	}
	if lo >= 1 || lo < 0.8 {
		t.Fatalf("20/20: lo = %g, want a bound a bit below 1", lo)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	prev := 2.0
	for _, n := range []int{10, 100, 1000, 10000} {
		lo, hi := Wilson(n/2, n, 1.96)
		if width := hi - lo; width >= prev {
			t.Fatalf("n=%d: width %g did not shrink from %g", n, width, prev)
		} else {
			prev = width
		}
	}
}

func TestWilsonMatchesHandComputation(t *testing.T) {
	// s=8, n=10, z=1.96: textbook values.
	lo, hi := Wilson(8, 10, 1.96)
	if math.Abs(lo-0.4901) > 5e-4 || math.Abs(hi-0.9433) > 5e-4 {
		t.Fatalf("Wilson(8,10) = [%g,%g], want ≈[0.4901,0.9433]", lo, hi)
	}
}
