package stats

import (
	"math"
	"sort"
)

// Window is a fixed-capacity sliding window of samples supporting quantile
// queries — the p50/p99 latency view a serving system wants, where only
// recent behavior matters and old samples must age out. Once the window is
// full every new sample overwrites the oldest one.
//
// Like Accumulator, a Window is not synchronized; callers observing it from
// multiple goroutines must provide their own locking.
type Window struct {
	buf   []float64
	next  int
	size  int
	total uint64
}

// NewWindow creates a window keeping the most recent capacity samples
// (minimum 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add ingests one sample, evicting the oldest when the window is full.
func (w *Window) Add(x float64) {
	w.buf[w.next] = x
	w.next = (w.next + 1) % len(w.buf)
	if w.size < len(w.buf) {
		w.size++
	}
	w.total++
}

// Len returns the number of samples currently held (≤ capacity).
func (w *Window) Len() int { return w.size }

// Total returns the number of samples ever ingested.
func (w *Window) Total() uint64 { return w.total }

// Quantile returns the q-quantile (q in [0,1]) of the held samples by the
// nearest-rank method: Quantile(0) is the minimum, Quantile(1) the maximum,
// Quantile(0.5) the median. It returns 0 for an empty window.
func (w *Window) Quantile(q float64) float64 {
	if w.size == 0 {
		return 0
	}
	sorted := make([]float64, w.size)
	copy(sorted, w.buf[:w.size])
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[w.size-1]
	}
	// Nearest rank: ceil(q·n), converted to a zero-based index.
	rank := int(math.Ceil(q * float64(w.size)))
	if rank < 1 {
		rank = 1
	}
	if rank > w.size {
		rank = w.size
	}
	return sorted[rank-1]
}

// Mean returns the mean of the held samples (0 when empty).
func (w *Window) Mean() float64 {
	if w.size == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range w.buf[:w.size] {
		sum += x
	}
	return sum / float64(w.size)
}
