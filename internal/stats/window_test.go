package stats

import "testing"

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(8)
	if w.Len() != 0 || w.Total() != 0 {
		t.Fatalf("empty window reports Len=%d Total=%d", w.Len(), w.Total())
	}
	if q := w.Quantile(0.5); q != 0 {
		t.Fatalf("empty Quantile(0.5) = %g, want 0", q)
	}
	if m := w.Mean(); m != 0 {
		t.Fatalf("empty Mean = %g, want 0", m)
	}
}

func TestWindowQuantiles(t *testing.T) {
	w := NewWindow(100)
	for i := 1; i <= 100; i++ {
		w.Add(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.5, 50}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := w.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if m := w.Mean(); m != 50.5 {
		t.Errorf("Mean = %g, want 50.5", m)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 10; i++ {
		w.Add(float64(i))
	}
	// Only 7..10 remain.
	if w.Len() != 4 {
		t.Fatalf("Len = %d, want 4", w.Len())
	}
	if w.Total() != 10 {
		t.Fatalf("Total = %d, want 10", w.Total())
	}
	if lo, hi := w.Quantile(0), w.Quantile(1); lo != 7 || hi != 10 {
		t.Fatalf("window range [%g,%g], want [7,10]", lo, hi)
	}
}

func TestWindowSingleSample(t *testing.T) {
	w := NewWindow(1)
	w.Add(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := w.Quantile(q); got != 42 {
			t.Errorf("Quantile(%g) = %g, want 42", q, got)
		}
	}
}
