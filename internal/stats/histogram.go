package stats

import "math/bits"

// histSubBits is the number of linear sub-buckets per power-of-two octave,
// as a power of two: 2^histSubBits = 16 sub-buckets, bounding the relative
// quantization error of any recorded value by 1/16 ≈ 6%.
const histSubBits = 4

// histBuckets covers values up to 2^63-1 ns (~292 years): 64 octaves of
// 2^histSubBits sub-buckets each.
const histBuckets = 64 << histSubBits

// Histogram is an HDR-style log-linear histogram over non-negative int64
// values (by convention nanoseconds): each power-of-two octave is divided
// into 16 linear sub-buckets, so quantiles are exact to ~6% relative error
// across the full range — microsecond cache hits and multi-second tail
// stalls fit in the same fixed-size instrument with no a-priori bounds.
//
// All state is integral (bucket counts, exact integer extremes and sum), so
// Merge is associative and commutative bit-for-bit: N workers recording into
// private histograms and merging produce exactly the counts of one worker
// recording the same multiset, whatever the interleaving or worker count.
// That property is what lets a load run report byte-identical quantiles at
// any concurrency.
//
// A Histogram is not synchronized; concurrent writers must use one instance
// each and Merge afterwards (which is also the fast path — no contention).
type Histogram struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	min    int64 // valid when count > 0
	max    int64
}

// histBucket maps a value to its bucket index. Values below one sub-bucket
// width land in the linear bottom buckets (index == value for small v).
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	e := bits.Len64(u) // 0 for v == 0
	if e <= histSubBits+1 {
		return int(u) // small values: one bucket per unit, exact
	}
	// Octave [2^(e-1), 2^e): linear sub-bucket within it.
	shift := uint(e - 1 - histSubBits)
	return ((e - 1) << histSubBits) + int((u>>shift)&((1<<histSubBits)-1))
}

// histUpper returns the inclusive upper bound of bucket idx — the value
// Quantile reports for samples in the bucket. Reporting the upper bound
// makes quantiles conservative: the true quantile is never above it.
func histUpper(idx int) int64 {
	e := idx >> histSubBits
	if e <= histSubBits {
		// Small-value region where buckets are exact single values. The
		// region covers indices up to (histSubBits+1)<<histSubBits; within
		// it the bucket index is the value itself.
		if idx < (histSubBits+1)<<histSubBits {
			return int64(idx)
		}
	}
	sub := idx & (1<<histSubBits - 1)
	shift := uint(e - histSubBits)
	lower := uint64(1)<<uint(e) + uint64(sub)<<shift
	return int64(lower + 1<<shift - 1)
}

// Record ingests one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN ingests n occurrences of v.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += uint64(v) * n
}

// Merge adds other's samples into h. Merging is exact: counts, sum and
// extremes combine with integer arithmetic only.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	for i, c := range other.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Min returns the exact smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the exact largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact mean of the recorded samples (0 when empty). The
// internal sum is integral, so the result does not depend on recording or
// merge order.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) by the nearest-rank method
// over bucket upper bounds: Quantile(0) is the exact minimum, Quantile(1)
// the exact maximum, and interior quantiles are bucket upper bounds — never
// below the true order statistic and at most ~6% above it. It returns 0 for
// an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Nearest rank: the smallest bucket whose cumulative count reaches
	// ceil(q·n).
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			u := histUpper(i)
			// The top bucket cannot report past the exact maximum.
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}
