package stats

import (
	"fmt"
	"math"
)

// Accumulator ingests float64 samples and reports summary statistics.
// It uses Welford's algorithm, so it is numerically stable for long runs.
// The zero value is ready to use.
type Accumulator struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add ingests one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddAll ingests a batch of samples.
func (a *Accumulator) AddAll(xs []float64) {
	for _, x := range xs {
		a.Add(x)
	}
}

// N returns the sample count.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 when n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest sample (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean. With the paper's 60 samples per point the normal
// approximation is adequate.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Series is a named sequence of (x, Accumulator) points, e.g. one curve of a
// figure: x is the granularity, the accumulator collects the per-graph
// normalized latencies at that granularity.
type Series struct {
	Name   string
	Xs     []float64
	Points []*Accumulator
}

// NewSeries creates an empty series with the given name.
func NewSeries(name string) *Series { return &Series{Name: name} }

// At returns the accumulator for x, creating the point if needed. Points are
// kept in insertion order; the harness inserts xs in ascending order.
func (s *Series) At(x float64) *Accumulator {
	for i, xv := range s.Xs {
		if xv == x {
			return s.Points[i]
		}
	}
	acc := &Accumulator{}
	s.Xs = append(s.Xs, x)
	s.Points = append(s.Points, acc)
	return acc
}

// Means returns the per-point means, aligned with Xs.
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Mean()
	}
	return out
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Xs) }
