package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.StdDev() != 0 {
		t.Error("zero accumulator not zero")
	}
	a.AddAll([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %g", a.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if v := a.Variance(); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("Variance = %g, want %g", v, 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("extrema %g %g", a.Min(), a.Max())
	}
	if a.StdErr() <= 0 || a.CI95() <= 0 {
		t.Error("non-positive error estimates")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(42)
	if a.Mean() != 42 || a.Variance() != 0 || a.Min() != 42 || a.Max() != 42 {
		t.Errorf("single sample: %s", a.String())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("curve")
	s.At(0.2).Add(1)
	s.At(0.2).Add(3)
	s.At(0.4).Add(10)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	means := s.Means()
	if means[0] != 2 || means[1] != 10 {
		t.Errorf("Means = %v", means)
	}
	if s.At(0.2).N() != 2 {
		t.Error("At did not return the existing point")
	}
}

func TestPropWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*50 + 1000
		}
		var a Accumulator
		a.AddAll(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-naiveVar) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropExtremaAndOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip non-finite inputs and magnitudes where (x - mean)
			// overflows — the accumulator targets physical quantities.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		var a Accumulator
		a.AddAll(xs)
		if a.Min() > a.Max() {
			return false
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
