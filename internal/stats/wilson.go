package stats

import "math"

// Wilson returns the Wilson score interval for a binomial proportion: the
// [lo, hi] range in which the true success probability lies with the
// confidence implied by z (1.96 for 95%). Unlike the naive normal interval
// p̂ ± z·√(p̂(1−p̂)/n), it stays inside [0,1] and behaves sensibly at the
// extremes — exactly the estimates a failure-injection run produces, where
// success rates near 1 are the common case. It returns [0,1] for n <= 0.
func Wilson(successes, trials int, z float64) (lo, hi float64) {
	if trials <= 0 {
		return 0, 1
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := p + z2/(2*n)
	margin := z * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 || successes == 0 {
		lo = 0
	}
	if hi > 1 || successes == trials {
		// Analytically the bound is exact at the extremes; pin it so float
		// rounding cannot report 0.9999999999999998 for an all-success run.
		hi = 1
	}
	return lo, hi
}
