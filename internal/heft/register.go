package heft

import (
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// runner adapts this package to the sched registry's uniform interface.
type runner struct{}

func (runner) Name() string { return "heft" }

func (runner) Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt sched.RunOptions) (*sched.Schedule, error) {
	return Schedule(g, p, cm, Options{
		NoInsertion:  opt.Policy == "noinsertion",
		BottomLevels: opt.BottomLevels,
	})
}

func init() {
	sched.Register(sched.Registration{
		Scheduler:   runner{},
		Description: "non-fault-tolerant reference (Topcuoglu et al.): upward-rank list scheduling with insertion-based earliest-finish-time placement",
		Policies:    []string{"noinsertion"},
		IgnoresRng:  true,
	})
}
