package heft

import (
	"fmt"
	"math"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Options configures a HEFT run.
type Options struct {
	// NoInsertion disables the insertion policy, reducing HEFT to plain
	// append-only EFT list scheduling (ablation knob).
	NoInsertion bool
}

// slot is one busy interval on a processor, kept sorted by start.
type slot struct{ start, finish float64 }

// Schedule runs HEFT and returns an ε=0 schedule.
func Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options) (*sched.Schedule, error) {
	s, err := sched.New(g, p, cm, 0, sched.PatternAll, "HEFT")
	if err != nil {
		return nil, err
	}
	// Upward ranks: bottom levels with mean execution and communication
	// costs — identical averaging to the paper's bℓ.
	rank, err := sched.AvgBottomLevels(g, cm, p)
	if err != nil {
		return nil, err
	}
	order := make([]dag.TaskID, g.NumTasks())
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return order[a] < order[b]
	})

	m := p.NumProcs()
	busy := make([][]slot, m)
	finish := make([]float64, g.NumTasks())
	proc := make([]platform.ProcID, g.NumTasks())

	for _, t := range order {
		bestProc := platform.ProcID(-1)
		bestStart, bestFinish := 0.0, math.Inf(1)
		for j := 0; j < m; j++ {
			pj := platform.ProcID(j)
			ready := 0.0
			for _, pe := range g.Preds(t) {
				arr := finish[pe.To] + pe.Volume*p.Delay(proc[pe.To], pj)
				if arr > ready {
					ready = arr
				}
			}
			e := cm.Cost(t, pj)
			start := placeIn(busy[j], ready, e, opt.NoInsertion)
			if start+e < bestFinish {
				bestProc, bestStart, bestFinish = pj, start, start+e
			}
		}
		if bestProc < 0 {
			return nil, fmt.Errorf("heft: no processor for task %d", t)
		}
		insertSlot(&busy[bestProc], slot{bestStart, bestFinish})
		finish[t] = bestFinish
		proc[t] = bestProc
		if err := s.Place(t, []sched.Replica{{
			Task: t, Copy: 0, Proc: bestProc,
			StartMin: bestStart, FinishMin: bestFinish,
			StartMax: bestStart, FinishMax: bestFinish,
		}}); err != nil {
			return nil, err
		}
	}
	if !s.Complete() {
		return nil, dag.ErrCycle
	}
	return s, nil
}

// placeIn returns the earliest start >= ready where a task of duration e
// fits on the processor. With insertion enabled it scans the gaps between
// busy slots; otherwise it appends after the last slot.
func placeIn(busy []slot, ready, e float64, noInsertion bool) float64 {
	if len(busy) == 0 {
		return ready
	}
	if noInsertion {
		last := busy[len(busy)-1].finish
		if last > ready {
			return last
		}
		return ready
	}
	// Gap before the first slot.
	if ready+e <= busy[0].start {
		return ready
	}
	for i := 0; i+1 < len(busy); i++ {
		gapStart := math.Max(ready, busy[i].finish)
		if gapStart+e <= busy[i+1].start {
			return gapStart
		}
	}
	return math.Max(ready, busy[len(busy)-1].finish)
}

// insertSlot keeps the busy list sorted by start time.
func insertSlot(busy *[]slot, s slot) {
	i := sort.Search(len(*busy), func(i int) bool { return (*busy)[i].start >= s.start })
	*busy = append(*busy, slot{})
	copy((*busy)[i+1:], (*busy)[i:])
	(*busy)[i] = s
}
