package heft

import (
	"fmt"
	"sort"

	"ftsched/internal/dag"
	"ftsched/internal/kernel"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
)

// Options configures a HEFT run.
type Options struct {
	// NoInsertion disables the insertion policy, reducing HEFT to plain
	// append-only EFT list scheduling (ablation knob).
	NoInsertion bool
	// BottomLevels, when non-nil, supplies the precomputed upward ranks
	// (sched.AvgBottomLevels) instead of recomputing them; callers
	// scheduling one instance under several schedulers share the slice.
	// Read-only to the scheduler.
	BottomLevels []float64
}

// Schedule runs HEFT and returns an ε=0 schedule. Placement goes through
// the shared kernel: per-processor busy timelines with insertion-based
// earliest-slot search (or append-only under NoInsertion).
func Schedule(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, opt Options) (*sched.Schedule, error) {
	f, err := g.Freeze()
	if err != nil {
		return nil, err
	}
	s, err := sched.New(g, p, cm, 0, sched.PatternAll, "HEFT")
	if err != nil {
		return nil, err
	}
	// Upward ranks: bottom levels with mean execution and communication
	// costs — identical averaging to the paper's bℓ.
	rank, err := sched.ResolveBottomLevels(g, cm, p, opt.BottomLevels)
	if err != nil {
		return nil, err
	}
	order := make([]dag.TaskID, g.NumTasks())
	for i := range order {
		order[i] = dag.TaskID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		if rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return order[a] < order[b]
	})

	m := p.NumProcs()
	b := kernel.NewBoard(m, !opt.NoInsertion)
	defer b.Release()

	for _, t := range order {
		b.Arrivals(f, p, s, t)
		bestProc := platform.ProcID(-1)
		bestStart, bestFinish := 0.0, 0.0
		for j := 0; j < m; j++ {
			e := cm.Cost(t, platform.ProcID(j))
			start := b.StartMin(j, b.ArrMin[j], e)
			if bestProc < 0 || start+e < bestFinish {
				bestProc, bestStart, bestFinish = platform.ProcID(j), start, start+e
			}
		}
		if bestProc < 0 {
			return nil, fmt.Errorf("heft: no processor for task %d", t)
		}
		reps := []sched.Replica{{
			Task: t, Copy: 0, Proc: bestProc,
			StartMin: bestStart, FinishMin: bestFinish,
			StartMax: bestStart, FinishMax: bestFinish,
		}}
		if err := s.Place(t, reps); err != nil {
			return nil, err
		}
		b.Commit(reps)
	}
	if !s.Complete() {
		return nil, dag.ErrCycle
	}
	return s, nil
}
