package heft

import (
	"math/rand"
	"testing"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
	"ftsched/internal/workload"
)

func instance(t *testing.T, seed int64, procs int) *workload.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 40, 60
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestHEFTValidates(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst := instance(t, seed, 10)
		s, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: Validate: %v", seed, err)
		}
		if s.Epsilon != 0 {
			t.Errorf("ε = %d", s.Epsilon)
		}
		if s.LowerBound() != s.UpperBound() {
			t.Errorf("seed %d: unreplicated bounds differ", seed)
		}
		for tsk := 0; tsk < inst.Graph.NumTasks(); tsk++ {
			if got := len(s.Replicas(dag.TaskID(tsk))); got != 1 {
				t.Fatalf("task %d has %d replicas", tsk, got)
			}
		}
	}
}

func TestHEFTChainIsSequential(t *testing.T) {
	// A chain with heavy communication serializes on one processor: latency
	// equals the sum of the fastest execution times.
	g, err := workload.Chain(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	p, err := platform.New(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{
		{5, 9, 9}, {5, 9, 9}, {5, 9, 9}, {5, 9, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Schedule(g, p, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lb := s.LowerBound(); lb != 20 {
		t.Errorf("chain latency = %g, want 20", lb)
	}
}

func TestHEFTInsertionHelpsOnAverage(t *testing.T) {
	var with, without float64
	const trials = 25
	for seed := int64(1); seed <= trials; seed++ {
		inst := instance(t, seed, 8)
		a, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{NoInsertion: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("no-insertion invalid: %v", err)
		}
		with += a.LowerBound()
		without += b.LowerBound()
	}
	// Insertion can only reuse idle gaps; over a batch it must not lose.
	if with > without*1.01 {
		t.Errorf("insertion mean %.1f worse than append-only %.1f", with/trials, without/trials)
	}
}

func TestHEFTComparableToFaultFreeFTSA(t *testing.T) {
	// FTSA with ε=0 is an EFT list scheduler like HEFT; over a batch their
	// makespans must be within 15% of each other (they differ only in
	// priority ordering and insertion).
	var heftSum, ftsaSum float64
	const trials = 20
	for seed := int64(1); seed <= trials; seed++ {
		inst := instance(t, seed, 10)
		h, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 0})
		if err != nil {
			t.Fatal(err)
		}
		heftSum += h.LowerBound()
		ftsaSum += f.LowerBound()
	}
	ratio := ftsaSum / heftSum
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("fault-free FTSA vs HEFT ratio %.3f outside [0.85,1.15]", ratio)
	}
}

func TestHEFTGapFilling(t *testing.T) {
	// Construct a schedule where insertion finds a gap: two independent
	// heavy tasks and one light task whose only fast processor is busy.
	// Task 2 depends on task 0; task 1 is independent and long. With
	// insertion, task 3 (light, ready at 0) slips into P0's idle gap.
	g := dag.NewWithTasks("gap", 4)
	g.MustAddEdge(0, 2, 100)
	p, err := platform.New(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{
		{10, 50},  // task 0: fast on P0
		{60, 12},  // task 1: fast on P1
		{10, 999}, // task 2: only sensible on P0
		{5, 999},  // task 3: only sensible on P0
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Schedule(g, p, cm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ni, err := Schedule(g, p, cm, Options{NoInsertion: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.LowerBound() > ni.LowerBound() {
		t.Errorf("insertion %g worse than append %g", s.LowerBound(), ni.LowerBound())
	}
}
