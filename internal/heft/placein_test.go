package heft

import "testing"

// Unit tests for the insertion-slot search, the mechanism distinguishing
// HEFT from plain append-only EFT scheduling.

func TestPlaceInEmpty(t *testing.T) {
	if got := placeIn(nil, 7, 3, false); got != 7 {
		t.Errorf("empty busy list: %g, want 7", got)
	}
}

func TestPlaceInGapBeforeFirst(t *testing.T) {
	busy := []slot{{10, 20}}
	if got := placeIn(busy, 0, 5, false); got != 0 {
		t.Errorf("leading gap: %g, want 0", got)
	}
	// Task too long for the leading gap: goes after the last slot.
	if got := placeIn(busy, 0, 15, false); got != 20 {
		t.Errorf("oversized task: %g, want 20", got)
	}
}

func TestPlaceInMiddleGap(t *testing.T) {
	busy := []slot{{0, 10}, {20, 30}, {50, 60}}
	// Fits in [10,20).
	if got := placeIn(busy, 5, 8, false); got != 10 {
		t.Errorf("middle gap: %g, want 10", got)
	}
	// Ready inside the gap.
	if got := placeIn(busy, 12, 8, false); got != 12 {
		t.Errorf("ready inside gap: %g, want 12", got)
	}
	// Too long for [10,20) but fits [30,50).
	if got := placeIn(busy, 5, 15, false); got != 30 {
		t.Errorf("second gap: %g, want 30", got)
	}
	// Fits nowhere: appended after 60.
	if got := placeIn(busy, 5, 25, false); got != 60 {
		t.Errorf("append: %g, want 60", got)
	}
}

func TestPlaceInNoInsertion(t *testing.T) {
	busy := []slot{{0, 10}, {20, 30}}
	// Even though [10,20) is free, append-only mode goes after 30.
	if got := placeIn(busy, 0, 5, true); got != 30 {
		t.Errorf("no-insertion: %g, want 30", got)
	}
	if got := placeIn(busy, 45, 5, true); got != 45 {
		t.Errorf("no-insertion late ready: %g, want 45", got)
	}
}

func TestInsertSlotKeepsOrder(t *testing.T) {
	var busy []slot
	for _, s := range []slot{{20, 30}, {0, 10}, {40, 50}, {10, 20}} {
		insertSlot(&busy, s)
	}
	for i := 1; i < len(busy); i++ {
		if busy[i].start < busy[i-1].start {
			t.Fatalf("slots out of order: %v", busy)
		}
	}
	if len(busy) != 4 {
		t.Fatalf("len = %d", len(busy))
	}
}
