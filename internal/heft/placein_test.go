package heft

import (
	"math/rand"
	"testing"

	"ftsched/internal/workload"
)

// The slot-search mechanics moved to internal/kernel (Timeline), which has
// its own unit tests; what remains HEFT's responsibility is that the
// insertion policy is actually wired through: both modes must produce valid
// schedules, and across a batch of instances insertion must win in
// aggregate (a single instance can go either way — filling a gap perturbs
// every later greedy choice).

func TestInsertionHelpsInAggregate(t *testing.T) {
	var insTotal, appTotal float64
	for seed := int64(1); seed <= 8; seed++ {
		inst, err := workload.NewInstance(rand.New(rand.NewSource(seed)), workload.DefaultPaperConfig(1.0))
		if err != nil {
			t.Fatal(err)
		}
		ins, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		app, err := Schedule(inst.Graph, inst.Platform, inst.Costs, Options{NoInsertion: true})
		if err != nil {
			t.Fatalf("seed %d (no insertion): %v", seed, err)
		}
		for _, s := range []*struct {
			name string
			err  error
		}{{"insertion", ins.Validate()}, {"append-only", app.Validate()}} {
			if s.err != nil {
				t.Fatalf("seed %d: %s schedule invalid: %v", seed, s.name, s.err)
			}
		}
		insTotal += ins.LowerBound()
		appTotal += app.LowerBound()
	}
	if insTotal >= appTotal {
		t.Errorf("insertion total makespan %g not better than append-only %g", insTotal, appTotal)
	}
}
