// Package heft implements HEFT (Heterogeneous Earliest Finish Time;
// Topcuoglu, Hariri, Wu 2002), the standard non-fault-tolerant reference
// heuristic for DAG scheduling on heterogeneous platforms. The paper's
// fault-free FTSA run (ε = 0) is an EFT list scheduler of the same family;
// HEFT differs in two ways — static upward-rank priorities instead of the
// dynamic criticalness, and *insertion-based* processor slots (a task may
// fill an idle gap between two already-scheduled tasks). Having the
// canonical baseline in-tree lets the test suite anchor FTSA's fault-free
// quality against the literature's reference point.
//
// HEFT schedules are analysis artifacts: they carry no replication
// (ε = 0), and because of insertion their per-processor execution order is
// not the mapping order, so they are meant for bound comparisons rather
// than for the crash simulator.
package heft
