package ftsched_test

import (
	"fmt"
	"log"

	"ftsched"
	"ftsched/internal/dag"
	"ftsched/internal/platform"
)

// twoTaskProblem builds the smallest interesting problem: two chained tasks
// on two identical processors (execution costs 5 and 7, volume 10, unit
// delay 1), so every number below can be checked by hand.
func twoTaskProblem() (*ftsched.Graph, *ftsched.Platform, *ftsched.CostModel) {
	g := dag.NewWithTasks("chain2", 2)
	g.MustAddEdge(0, 1, 10)
	p, err := platform.New(2, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	cm, err := platform.NewCostModelFromMatrix([][]float64{{5, 5}, {7, 7}})
	if err != nil {
		log.Fatal(err)
	}
	return g, p, cm
}

// ExampleFTSA schedules a two-task chain with one tolerated failure. Both
// tasks get two replicas; the lower bound uses the co-located predecessor
// copy (start 5), the upper bound waits for the remote one (5 + 10·1 = 15).
func ExampleFTSA() {
	g, p, cm := twoTaskProblem()
	s, err := ftsched.FTSA(g, p, cm, ftsched.Options{Epsilon: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %g\n", s.LowerBound())
	fmt.Printf("upper bound: %g\n", s.UpperBound())
	fmt.Printf("messages:    %d\n", s.MessageCount())
	// Output:
	// lower bound: 12
	// upper bound: 22
	// messages:    2
}

// ExampleMCFTSA shows the Minimum Communications variant on the same
// problem: each copy of task 1 receives from its co-located copy of task 0,
// so no inter-processor message remains and the bounds coincide.
func ExampleMCFTSA() {
	g, p, cm := twoTaskProblem()
	s, err := ftsched.MCFTSA(g, p, cm, ftsched.MCFTSAOptions{
		Options: ftsched.Options{Epsilon: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %g\n", s.LowerBound())
	fmt.Printf("upper bound: %g\n", s.UpperBound())
	fmt.Printf("messages:    %d\n", s.MessageCount())
	// Output:
	// lower bound: 12
	// upper bound: 12
	// messages:    0
}

// ExampleScheduleByName dispatches through the scheduler registry — the
// same resolution the ftserved HTTP API, the campaign engine and the CLIs
// use — and lists the registered names.
func ExampleScheduleByName() {
	g, p, cm := twoTaskProblem()
	fmt.Println(ftsched.Schedulers())
	// Names and aliases are matched case-insensitively.
	s, err := ftsched.ScheduleByName("MC-FTSA", g, p, cm, ftsched.RunOptions{Epsilon: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s messages: %d\n", s.Algorithm, s.MessageCount())
	// A scheduler that is not fault-tolerant rejects ε > 0 up front.
	if _, err := ftsched.ScheduleByName("heft", g, p, cm, ftsched.RunOptions{Epsilon: 1}); err != nil {
		fmt.Println(err)
	}
	// Output:
	// [ftsa mcftsa ftsa-ins ftbar heft]
	// MC-FTSA messages: 0
	// sched: scheduler "heft" is not fault-tolerant; epsilon must be 0, got 1
}

// ExampleSimulate crashes one processor at time zero; the surviving copy of
// each task completes, at the cost of waiting for the remote input.
func ExampleSimulate() {
	g, p, cm := twoTaskProblem()
	s, err := ftsched.FTSA(g, p, cm, ftsched.Options{Epsilon: 1})
	if err != nil {
		log.Fatal(err)
	}
	sc, err := ftsched.CrashAtZero(2, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ftsched.Simulate(s, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency after losing P0: %g\n", res.Latency)
	// Output:
	// latency after losing P0: 12
}

// ExampleMaxToleratedFailures finds how many failures fit a latency budget
// (Section 4.3 of the paper): with a budget of 22 the two-processor
// platform supports ε = 1; with 12 only the unreplicated schedule fits.
func ExampleMaxToleratedFailures() {
	g, p, cm := twoTaskProblem()
	sched := ftsched.FTSAScheduler(g, p, cm, ftsched.Options{})
	for _, budget := range []float64{22, 12} {
		eps, _, err := ftsched.MaxToleratedFailures(2, budget, sched)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("budget %g tolerates %d failure(s)\n", budget, eps)
	}
	// Output:
	// budget 22 tolerates 1 failure(s)
	// budget 12 tolerates 0 failure(s)
}

// ExampleSurvivalLowerBound bounds the survival probability of an ε=1
// schedule on two processors whose lifetimes are exponential.
func ExampleSurvivalLowerBound() {
	law := ftsched.Exponential{Lambda: 0.01}
	pSurvive, err := ftsched.SurvivalLowerBound(law, 2, 1, 22)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(survive) >= %.4f\n", pSurvive)
	// Output:
	// P(survive) >= 0.9610
}
