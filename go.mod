module ftsched

go 1.24
