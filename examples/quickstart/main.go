// Quickstart: generate a paper-style random workload, schedule it with FTSA
// so it tolerates two processor failures, inspect the latency bounds, and
// watch the schedule survive an actual double crash.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftsched"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A random task graph with the paper's parameters: 100-150 tasks,
	// message volumes in [50,150], 20 heterogeneous processors with unit
	// delays in [0.5,1], scaled to granularity 1.0.
	inst, err := ftsched.NewInstance(rng, ftsched.DefaultPaperConfig(1.0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks, %d edges, %d processors\n",
		inst.Graph.NumTasks(), inst.Graph.NumEdges(), inst.Platform.NumProcs())

	// Tolerate ε = 2 fail-stop failures: every task runs on 3 processors.
	const epsilon = 2
	s, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.Options{Epsilon: epsilon, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FTSA schedule (ε=%d):\n", epsilon)
	fmt.Printf("  latency if nothing fails:       %.1f\n", s.LowerBound())
	fmt.Printf("  latency guaranteed under ε=2:   %.1f\n", s.UpperBound())
	fmt.Printf("  inter-processor messages:       %d\n", s.MessageCount())

	// Crash two processors, chosen uniformly, before they do any work.
	sc, err := ftsched.UniformCrashes(rng, inst.Platform.NumProcs(), epsilon)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ftsched.Simulate(s, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 2 crashes the application still finished at %.1f "+
		"(within the %.1f guarantee)\n", res.Latency, s.UpperBound())

	// MC-FTSA: same fault tolerance, a fraction of the messages.
	mc, err := ftsched.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.MCFTSAOptions{Options: ftsched.Options{Epsilon: epsilon, Rng: rng}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MC-FTSA cuts messages from %d to %d (latency %.1f -> %.1f)\n",
		s.MessageCount(), mc.MessageCount(), s.LowerBound(), mc.LowerBound())
}
