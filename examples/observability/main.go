// Observability: everything the library tells you about a schedule beyond
// the two latency numbers — Gantt chart, resource metrics, theoretical
// quality bounds, and a complete execution trace of a crash scenario.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"ftsched"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(5))

	// A tiled Cholesky factorization on 6 processors, ε=1.
	g, err := workload.Cholesky(5, 80)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ftsched.DefaultPaperConfig(1.0)
	cfg.Procs = 6
	inst, err := ftsched.NewInstanceForGraph(rng, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	s, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.Options{Epsilon: 1, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(s.Summary())
	fmt.Println()

	// The Gantt chart: who computes what, when.
	if err := s.WriteGantt(os.Stdout, sched.GanttOptions{Width: 90}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Resource metrics.
	m, err := s.ComputeMetrics()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicas %d (factor %.2f), comm volume %.0f over %d messages\n",
		m.Replicas, m.ReplicationFactor, m.CommVolume, m.Messages)
	fmt.Printf("utilization mean %.0f%% (min %.0f%%, max %.0f%%)\n",
		100*m.MeanUtilization, 100*m.MinUtilization, 100*m.MaxUtilization)

	// How far from optimal? Compare against machine-independent bounds.
	q, err := s.QualityRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free latency is %.2fx the theoretical lower bound\n\n", q)

	// Kill one processor halfway through and watch the replay, event by
	// event (output truncated to the interesting part).
	sc := ftsched.NoFailures(6)
	if err := sc.Crash(2, s.LowerBound()/2); err != nil {
		log.Fatal(err)
	}
	tr := &sim.Trace{}
	res, err := sim.RunWithOptions(s, sc, sim.Options{Trace: tr})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P2 dies at %.0f; application still finishes at %.0f (bound %.0f)\n",
		s.LowerBound()/2, res.Latency, s.UpperBound())
	killed := tr.Filter(sim.EventKilled)
	skipped := tr.Filter(sim.EventSkip)
	fmt.Printf("%d replica(s) cut mid-execution, %d starved and skipped, %d completed\n",
		len(killed), len(skipped), len(tr.Filter(sim.EventFinish)))
}
