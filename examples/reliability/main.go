// Reliability analysis (the paper's future-work failure model): an FFT
// signal-processing pipeline runs on processors whose lifetimes follow an
// exponential law. How does the replication degree ε trade latency against
// the probability of delivering a result?
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftsched"
	"ftsched/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Radix-2 FFT on 32 points: 192 butterfly tasks.
	g, err := workload.FFT(5, 80)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ftsched.DefaultPaperConfig(1.2)
	cfg.Procs = 16
	inst, err := ftsched.NewInstanceForGraph(rng, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFT pipeline: %d tasks, %d edges on %d processors\n\n",
		g.NumTasks(), g.NumEdges(), cfg.Procs)

	// Failure rate: a processor has roughly a 10% chance of dying during
	// one fault-free execution of the pipeline.
	base, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: 0})
	if err != nil {
		log.Fatal(err)
	}
	law := ftsched.Exponential{Lambda: 0.1 / base.LowerBound()}

	fmt.Printf("%4s %12s %12s %16s %14s\n",
		"ε", "latency", "guarantee", "P(survive) ≥", "Monte-Carlo")
	for eps := 0; eps <= 4; eps++ {
		s, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs,
			ftsched.Options{Epsilon: eps, Rng: rng})
		if err != nil {
			log.Fatal(err)
		}
		bound, err := ftsched.SurvivalLowerBound(law, cfg.Procs, eps, s.UpperBound())
		if err != nil {
			log.Fatal(err)
		}
		mc, err := ftsched.MonteCarloReliability(99, s, law, 2000)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %12.1f %12.1f %16.4f %14.4f\n",
			eps, s.LowerBound(), s.UpperBound(), bound, mc.Success)
	}
	fmt.Println("\nreplication buys reliability; the latency column shows its price.")
}
