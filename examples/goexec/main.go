// Fault-tolerant execution of real Go functions: build a wavefront
// computation as a DAG, schedule it with FTSA (ε=1), then run it on actual
// goroutine workers — killing two processors mid-run and still collecting
// every result, byte-identical to a crash-free run.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"ftsched"
	"ftsched/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(9))

	// A 6x6 wavefront: task (i,j) combines its north and west neighbours.
	const rows, cols = 6, 6
	g, err := workload.Stencil(rows, cols, 64)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ftsched.DefaultPaperConfig(1.0)
	cfg.Procs = 6
	inst, err := ftsched.NewInstanceForGraph(rng, g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	const epsilon = 2
	s, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.Options{Epsilon: epsilon, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Summary())

	// Real task functions: cell (i,j) holds 1 + north + west, i.e. the
	// number of lattice paths — Pascal's triangle on its side.
	fns := make([]ftsched.TaskFunc, g.NumTasks())
	for t := 0; t < g.NumTasks(); t++ {
		fns[t] = func(inputs []ftsched.TaskPayload) (ftsched.TaskPayload, error) {
			total := uint64(1)
			if len(inputs) > 0 {
				total = 0
				for _, in := range inputs {
					total += binary.LittleEndian.Uint64(in)
				}
			}
			out := make(ftsched.TaskPayload, 8)
			binary.LittleEndian.PutUint64(out, total)
			return out, nil
		}
	}

	// Crash-free reference run.
	clean, err := ftsched.Execute(s, fns, ftsched.ExecConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Now kill P1 before it does anything and P3 after three replicas.
	crashed, err := ftsched.Execute(s, fns, ftsched.ExecConfig{
		CrashAfter: map[ftsched.ProcID]int{1: 0, 3: 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	corner := g.NumTasks() - 1
	cleanV := binary.LittleEndian.Uint64(clean.Output[corner])
	crashV := binary.LittleEndian.Uint64(crashed.Output[corner])
	fmt.Printf("corner value crash-free: %d\n", cleanV)
	fmt.Printf("corner value with P1 dead and P3 dying mid-run: %d\n", crashV)
	if cleanV != crashV {
		log.Fatal("results diverged!")
	}
	fmt.Printf("(%d messages clean, %d under crashes — the protocol absorbed both failures)\n",
		clean.MessagesSent, crashed.MessagesSent)
}
