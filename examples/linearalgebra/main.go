// Linear algebra on an unreliable cluster: schedule the task graph of
// Gaussian elimination — a classic motivating workload for heterogeneous
// scheduling — with all three algorithms and compare latency bounds, message
// counts and behaviour under crashes.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ftsched"
	"ftsched/internal/workload"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Gaussian elimination on a 12x12 matrix: 77 tasks with the classic
	// pivot/update dependence structure, one column (100 units) exchanged
	// per edge.
	g, err := workload.GaussianElimination(12, 100)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ftsched.DefaultPaperConfig(1.0)
	cfg.Procs = 12
	inst, err := ftsched.NewInstanceForGraph(rng, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Gaussian elimination DAG: %d tasks, %d edges on %d processors\n",
		g.NumTasks(), g.NumEdges(), cfg.Procs)

	const epsilon = 2
	type row struct {
		name string
		s    *ftsched.Schedule
	}
	ftsa, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.Options{Epsilon: epsilon, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}
	mc, err := ftsched.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.MCFTSAOptions{Options: ftsched.Options{Epsilon: epsilon, Rng: rng}})
	if err != nil {
		log.Fatal(err)
	}
	bar, err := ftsched.FTBAR(inst.Graph, inst.Platform, inst.Costs,
		ftsched.FTBAROptions{Npf: epsilon, Rng: rng})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %12s %12s %10s\n", "algorithm", "lower bound", "upper bound", "messages")
	for _, r := range []row{{"FTSA", ftsa}, {"MC-FTSA", mc}, {"FTBAR", bar}} {
		fmt.Printf("%-10s %12.1f %12.1f %10d\n",
			r.name, r.s.LowerBound(), r.s.UpperBound(), r.s.MessageCount())
	}

	// Crash every possible pair of processors and report the worst observed
	// latency per algorithm — an exhaustive check of the ε=2 guarantee.
	fmt.Printf("\nexhaustive double-crash sweep (%d scenarios):\n", 12*11/2)
	for _, r := range []row{{"FTSA", ftsa}, {"MC-FTSA", mc}, {"FTBAR", bar}} {
		worst := 0.0
		for a := 0; a < cfg.Procs; a++ {
			for b := a + 1; b < cfg.Procs; b++ {
				sc, err := ftsched.CrashAtZero(cfg.Procs, ftsched.ProcID(a), ftsched.ProcID(b))
				if err != nil {
					log.Fatal(err)
				}
				res, err := ftsched.Simulate(r.s, sc)
				if err != nil {
					log.Fatalf("%s failed under crash {%d,%d}: %v", r.name, a, b, err)
				}
				if res.Latency > worst {
					worst = res.Latency
				}
			}
		}
		fmt.Printf("  %-10s worst latency %.1f (guarantee %.1f)\n", r.name, worst, r.s.UpperBound())
	}
}
