// Bi-criteria trade-off exploration (Section 4.3 of the paper): given a
// latency budget, how many processor failures can a workload tolerate? And
// given both a budget and ε, detect infeasible combinations early via task
// deadlines.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"ftsched"
	"ftsched/internal/core"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	inst, err := ftsched.NewInstance(rng, ftsched.DefaultPaperConfig(0.8))
	if err != nil {
		log.Fatal(err)
	}
	m := inst.Platform.NumProcs()

	// Reference points: the fault-free latency and the guarantee at maximum
	// replication.
	ff, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: 0})
	if err != nil {
		log.Fatal(err)
	}
	full, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: m - 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free latency %.0f; all-processors replication guarantees %.0f\n\n",
		ff.LowerBound(), full.UpperBound())

	// Sweep latency budgets between the two and binary-search the maximum
	// tolerated ε for each (the paper's first bi-criteria driver).
	fmt.Printf("%-14s %8s %14s\n", "budget", "max ε", "guaranteed")
	sched := ftsched.FTSAScheduler(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{})
	for f := 1.0; f <= 3.0; f += 0.25 {
		budget := ff.LowerBound() * f
		eps, s, err := ftsched.MaxToleratedFailures(m, budget, sched)
		if err != nil {
			fmt.Printf("%-14.0f %8s %14s\n", budget, "-", "unachievable")
			continue
		}
		fmt.Printf("%-14.0f %8d %14.0f\n", budget, eps, s.UpperBound())
	}

	// Second driver: both criteria fixed, feasibility detected during
	// scheduling via per-task deadlines.
	fmt.Println("\njoint feasibility (ε=2, deadline-checked):")
	for _, f := range []float64{0.5, 1.5, 4.0} {
		budget := ff.LowerBound() * f
		_, err := ftsched.ScheduleWithDeadlines(inst.Graph, inst.Platform, inst.Costs,
			ftsched.Options{Epsilon: 2}, budget)
		switch {
		case err == nil:
			fmt.Printf("  L=%.0f: feasible\n", budget)
		case errors.Is(err, core.ErrDeadline):
			fmt.Printf("  L=%.0f: infeasible, detected mid-schedule (%v)\n", budget, err)
		default:
			log.Fatal(err)
		}
	}
}
