package ftsched_test

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ftsched"
	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/ftbar"
	"ftsched/internal/heft"
	"ftsched/internal/platform"
	"ftsched/internal/sched"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// buildFamily returns the named structured workload.
func buildFamily(t *testing.T, name string) *dag.Graph {
	t.Helper()
	var (
		g   *dag.Graph
		err error
	)
	switch name {
	case "chain":
		g, err = workload.Chain(20, 100)
	case "forkjoin":
		g, err = workload.ForkJoin(6, 3, 100)
	case "intree":
		g, err = workload.InTree(2, 4, 100)
	case "outtree":
		g, err = workload.OutTree(2, 4, 100)
	case "gauss":
		g, err = workload.GaussianElimination(8, 100)
	case "fft":
		g, err = workload.FFT(4, 100)
	case "stencil":
		g, err = workload.Stencil(5, 8, 100)
	case "independent":
		g, err = workload.Independent(30)
	default:
		t.Fatalf("unknown family %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAllAlgorithmsOnAllFamilies is the cross-product integration test:
// every scheduler on every workload family, validated structurally and
// dynamically (crash simulation with ε failures).
func TestAllAlgorithmsOnAllFamilies(t *testing.T) {
	families := []string{"chain", "forkjoin", "intree", "outtree", "gauss", "fft", "stencil", "independent"}
	const procs = 8
	const eps = 2
	for _, fam := range families {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			g := buildFamily(t, fam)
			cfg := ftsched.DefaultPaperConfig(1.0)
			cfg.Procs = procs
			if g.NumEdges() == 0 {
				cfg.Granularity = 0 // granularity undefined without edges
			}
			inst, err := ftsched.NewInstanceForGraph(rng, g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			type algo struct {
				name string
				run  func() (*sched.Schedule, error)
			}
			algos := []algo{
				{"FTSA", func() (*sched.Schedule, error) {
					return core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
				}},
				{"MC-FTSA", func() (*sched.Schedule, error) {
					return core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
						core.MCFTSAOptions{Options: core.Options{Epsilon: eps}})
				}},
				{"FTBAR", func() (*sched.Schedule, error) {
					return ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: eps})
				}},
			}
			for _, a := range algos {
				s, err := a.run()
				if err != nil {
					t.Fatalf("%s: %v", a.name, err)
				}
				if err := s.Validate(); err != nil {
					t.Fatalf("%s: Validate: %v", a.name, err)
				}
				lb, ub := s.LowerBound(), s.UpperBound()
				if lb <= 0 || ub < lb-1e-9 || math.IsInf(ub, 1) {
					t.Fatalf("%s: bad bounds [%g, %g]", a.name, lb, ub)
				}
				// Survive ε crash-at-zero failures drawn at random.
				crng := rand.New(rand.NewSource(2))
				for trial := 0; trial < 5; trial++ {
					sc, err := sim.UniformCrashes(crng, procs, eps)
					if err != nil {
						t.Fatal(err)
					}
					res, err := sim.Run(s, sc, nil)
					if err != nil {
						t.Fatalf("%s trial %d: %v", a.name, trial, err)
					}
					if res.Latency <= 0 {
						t.Fatalf("%s trial %d: latency %g", a.name, trial, res.Latency)
					}
				}
				// Metrics must be computable and self-consistent.
				m, err := s.ComputeMetrics()
				if err != nil {
					t.Fatalf("%s: metrics: %v", a.name, err)
				}
				if m.Replicas < g.NumTasks()*(eps+1) {
					t.Fatalf("%s: %d replicas < v(ε+1)", a.name, m.Replicas)
				}
				if m.MeanUtilization < 0 || m.MeanUtilization > 1+1e-9 {
					t.Fatalf("%s: utilization %g", a.name, m.MeanUtilization)
				}
			}
			// HEFT as the non-fault-tolerant reference.
			h, err := heft.Schedule(inst.Graph, inst.Platform, inst.Costs, heft.Options{})
			if err != nil {
				t.Fatalf("HEFT: %v", err)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("HEFT: %v", err)
			}
		})
	}
}

// TestInstancePersistenceRoundTrip saves a full instance to JSON and reloads
// it; schedules computed before and after must coincide exactly.
func TestInstancePersistenceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := ftsched.DefaultPaperConfig(0.9)
	cfg.Procs = 6
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 25, 35
	inst, err := ftsched.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var gBuf, pBuf, cBuf bytes.Buffer
	if _, err := inst.Graph.WriteTo(&gBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Platform.WriteTo(&pBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Costs.WriteTo(&cBuf); err != nil {
		t.Fatal(err)
	}
	g2, err := dag.Read(&gBuf)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := platform.Read(&pBuf)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := platform.ReadCostModel(&cBuf)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	after, err := ftsched.FTSA(g2, p2, c2, ftsched.Options{Epsilon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if before.LowerBound() != after.LowerBound() || before.UpperBound() != after.UpperBound() {
		t.Errorf("bounds changed across persistence: (%g,%g) vs (%g,%g)",
			before.LowerBound(), before.UpperBound(), after.LowerBound(), after.UpperBound())
	}
}

// TestPublicFacadeCoversWorkflow walks the whole public API the way the
// README's quick start does, with assertions at each step.
func TestPublicFacadeCoversWorkflow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst, err := ftsched.NewInstance(rng, ftsched.DefaultPaperConfig(1.0))
	if err != nil {
		t.Fatal(err)
	}
	gr, err := ftsched.Granularity(inst.Graph, inst.Costs, inst.Platform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gr-1.0) > 1e-9 {
		t.Errorf("granularity %g", gr)
	}
	s, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ftsched.UniformCrashes(rng, inst.Platform.NumProcs(), 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftsched.Simulate(s, sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency > s.UpperBound()+1e-7 {
		t.Errorf("latency %g above guarantee %g", res.Latency, s.UpperBound())
	}
	mc, err := ftsched.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
		ftsched.MCFTSAOptions{Options: ftsched.Options{Epsilon: 2, Rng: rng}})
	if err != nil {
		t.Fatal(err)
	}
	if mc.MessageCount() >= s.MessageCount() {
		t.Errorf("MC-FTSA messages %d >= FTSA %d", mc.MessageCount(), s.MessageCount())
	}
	bar, err := ftsched.FTBAR(inst.Graph, inst.Platform, inst.Costs, ftsched.FTBAROptions{Npf: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if err := bar.Validate(); err != nil {
		t.Fatal(err)
	}
	mcr, err := ftsched.MonteCarloReliability(4, s, ftsched.Exponential{Lambda: 0.1 / s.UpperBound()}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if mcr.Success <= 0 || mcr.Success > 1 {
		t.Errorf("MC success %g", mcr.Success)
	}
	sd, err := ftsched.ScheduleWithDeadlines(inst.Graph, inst.Platform, inst.Costs,
		ftsched.Options{Epsilon: 1}, s.UpperBound()*4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sd.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSimulatedFaultFreeEqualsBoundAcrossAlgorithms pins the core dynamic
// invariant on a matrix of instances: with no failures, the simulator must
// reproduce each schedule's lower bound exactly (FTSA, MC-FTSA) or within
// the duplication distortion (FTBAR, whose out-of-order duplicates make the
// mapping-order replay approximate; see internal/sim docs).
func TestSimulatedFaultFreeEqualsBoundAcrossAlgorithms(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := ftsched.DefaultPaperConfig(1.0)
		cfg.Procs = 10
		cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 40, 60
		inst, err := ftsched.NewInstance(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []int{0, 1, 3} {
			f, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(f, sim.NoFailures(10), nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Latency-f.LowerBound()) > 1e-7 {
				t.Errorf("seed %d ε=%d: FTSA sim %g != bound %g", seed, eps, res.Latency, f.LowerBound())
			}
			m, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
				core.MCFTSAOptions{Options: core.Options{Epsilon: eps}})
			if err != nil {
				t.Fatal(err)
			}
			mres, err := sim.Run(m, sim.NoFailures(10), nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mres.Latency-m.LowerBound()) > 1e-7 {
				t.Errorf("seed %d ε=%d: MC-FTSA sim %g != bound %g", seed, eps, mres.Latency, m.LowerBound())
			}
		}
	}
}

// TestEpsilonSweepInvariants sweeps ε on one instance and checks the
// monotone resource facts that must hold regardless of heuristic noise:
// replica count and message count grow strictly with ε.
func TestEpsilonSweepInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := ftsched.DefaultPaperConfig(1.0)
	cfg.Procs = 12
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 40, 60
	inst, err := ftsched.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prevMsgs := -1
	for eps := 0; eps <= 5; eps++ {
		s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.ComputeMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if m.Replicas != inst.Graph.NumTasks()*(eps+1) {
			t.Errorf("ε=%d: %d replicas", eps, m.Replicas)
		}
		if m.Messages <= prevMsgs {
			t.Errorf("ε=%d: messages %d not growing (prev %d)", eps, m.Messages, prevMsgs)
		}
		prevMsgs = m.Messages
	}
}

// TestGanttRendersForEveryAlgorithm exercises the renderer across pattern
// and duplication variants.
func TestGanttRendersForEveryAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := ftsched.DefaultPaperConfig(1.0)
	cfg.Procs = 6
	cfg.DAG.MinTasks, cfg.DAG.MaxTasks = 15, 20
	inst, err := ftsched.NewInstance(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	run := []func() (*sched.Schedule, error){
		func() (*sched.Schedule, error) {
			return core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 1})
		},
		func() (*sched.Schedule, error) {
			return core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
				core.MCFTSAOptions{Options: core.Options{Epsilon: 1}})
		},
		func() (*sched.Schedule, error) {
			return ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: 1})
		},
		func() (*sched.Schedule, error) {
			return heft.Schedule(inst.Graph, inst.Platform, inst.Costs, heft.Options{})
		},
	}
	for i, r := range run {
		s, err := r()
		if err != nil {
			t.Fatalf("algo %d: %v", i, err)
		}
		var buf bytes.Buffer
		if err := s.WriteGantt(&buf, sched.GanttOptions{Width: 60}); err != nil {
			t.Fatalf("algo %d gantt: %v", i, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("algo %d: empty gantt", i)
		}
		if s.Summary() == "" {
			t.Fatalf("algo %d: empty summary", i)
		}
	}
	_ = fmt.Sprintf // silence potential unused import under refactors
}
