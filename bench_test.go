// Benchmarks regenerating the paper's evaluation, one per table and figure
// (see DESIGN.md §5 for the experiment index), plus the ablations X1-X3.
// The full-size figure batches (60 graphs per point) are produced by
// `go run ./cmd/ftexp`; the benchmarks here measure representative
// figure points and the Table 1 scaling shape so `go test -bench=.` gives
// the complete per-experiment cost profile.
package ftsched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"ftsched"
	"ftsched/internal/core"
	"ftsched/internal/exec"
	"ftsched/internal/expt"
	"ftsched/internal/ftbar"
	"ftsched/internal/reliability"
	"ftsched/internal/sim"
	"ftsched/internal/workload"
)

// benchInstance draws the paper's Figure 1-3 workload at granularity 1.0.
func benchInstance(b *testing.B, seed int64, procs int) *workload.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := workload.DefaultPaperConfig(1.0)
	cfg.Procs = procs
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// figurePoint benchmarks one figure point: all three schedulers plus the
// crash simulation on a paper-sized instance, for the given ε.
func figurePoint(b *testing.B, eps int, procs int) {
	inst := benchInstance(b, 1, procs)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: eps})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
			core.MCFTSAOptions{Options: core.Options{Epsilon: eps}}); err != nil {
			b.Fatal(err)
		}
		if _, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: eps}); err != nil {
			b.Fatal(err)
		}
		sc, err := sim.UniformCrashes(rng, procs, eps)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(s, sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Point measures one ε=1 figure point (bounds + crash run).
func BenchmarkFigure1Point(b *testing.B) { figurePoint(b, 1, 20) }

// BenchmarkFigure2Point measures one ε=2 figure point.
func BenchmarkFigure2Point(b *testing.B) { figurePoint(b, 2, 20) }

// BenchmarkFigure3Point measures one ε=5 figure point.
func BenchmarkFigure3Point(b *testing.B) { figurePoint(b, 5, 20) }

// BenchmarkFigure4Point measures one Figure 4 point (5 processors, ε=2,
// FTSA with 0/1/2 crashes).
func BenchmarkFigure4Point(b *testing.B) {
	inst := benchInstance(b, 3, 5)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k <= 2; k++ {
			sc, err := sim.UniformCrashes(rng, 5, k)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(s, sc, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigureHarness runs the full experiment harness on a reduced
// configuration, covering the exact code path of `ftexp -fig 1`.
func BenchmarkFigureHarness(b *testing.B) {
	cfg, err := expt.FigureConfig(1)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Granularities = []float64{1.0}
	cfg.GraphsPerPoint = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// table1Instance draws the Table 1 workload: v tasks, 50 processors, ε=5.
func table1Instance(b *testing.B, v int) *workload.Instance {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(v)))
	cfg := workload.PaperConfig{
		DAG: workload.RandomDAGConfig{
			MinTasks: v, MaxTasks: v,
			MinVolume: 50, MaxVolume: 150,
			ShapeFactor: 1.0, EdgeDensity: 0.25,
		},
		Procs:    50,
		MinDelay: 0.5, MaxDelay: 1.0,
		MinCost: 10, MaxCost: 100,
		Granularity: 1.0,
	}
	inst, err := workload.NewInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkTable1 reproduces the paper's running-time table: sub-benchmarks
// per algorithm and task count (m=50, ε=5). Compare the growth of the
// FTBAR/v series against FTSA/v — the paper's Table 1 claim.
func BenchmarkTable1(b *testing.B) {
	for _, v := range []int{100, 500, 1000, 2000} {
		inst := table1Instance(b, v)
		b.Run(fmt.Sprintf("FTSA/v=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("MCFTSA/v=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
					core.MCFTSAOptions{Options: core.Options{Epsilon: 5}}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("FTBAR/v=%d", v), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ftbar.Schedule(inst.Graph, inst.Platform, inst.Costs, ftbar.Options{Npf: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMatching (X1) compares MC-FTSA's greedy edge selection
// against the bottleneck-optimal matching of Section 4.2.
func BenchmarkAblationMatching(b *testing.B) {
	inst := benchInstance(b, 5, 20)
	for _, pol := range []core.MatchPolicy{core.MatchGreedy, core.MatchBottleneck} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MCFTSA(inst.Graph, inst.Platform, inst.Costs,
					core.MCFTSAOptions{Options: core.Options{Epsilon: 3}, Policy: pol}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCommModels (X2) replays the same FTSA schedule under the
// paper's contention-free model, the one-port model and a 4-port bounded
// multi-port model (the conclusion's "more realistic communication models").
func BenchmarkAblationCommModels(b *testing.B) {
	inst := benchInstance(b, 6, 20)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	multi, err := sim.NewBoundedMultiPort(20, 4)
	if err != nil {
		b.Fatal(err)
	}
	models := []struct {
		name  string
		model sim.CommModel
	}{
		{"contention-free", sim.ContentionFree{}},
		{"one-port", sim.NewOnePort(20)},
		{"4-port", multi},
	}
	for _, m := range models {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(s, sim.NoFailures(20), m.model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReliability (X3) measures the Monte-Carlo reliability estimator.
func BenchmarkReliability(b *testing.B) {
	inst := benchInstance(b, 7, 16)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	law := reliability.Exponential{Lambda: 0.5 / s.UpperBound()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reliability.MonteCarlo(8, s, law, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecutor measures the concurrent runtime: goroutine workers and
// channel links executing a paper-sized workload (X7: executor overhead).
func BenchmarkExecutor(b *testing.B) {
	inst := benchInstance(b, 10, 8)
	s, err := core.FTSA(inst.Graph, inst.Platform, inst.Costs, core.Options{Epsilon: 2})
	if err != nil {
		b.Fatal(err)
	}
	fns := make([]exec.Task, inst.Graph.NumTasks())
	for t := range fns {
		fns[t] = func(inputs []exec.Payload) (exec.Payload, error) {
			return exec.Payload{byte(len(inputs))}, nil
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exec.Run(s, fns, exec.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPI exercises the façade end to end, as a downstream user
// would (workload → schedule → crash simulation).
func BenchmarkPublicAPI(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < b.N; i++ {
		inst, err := ftsched.NewInstance(rng, ftsched.DefaultPaperConfig(1.0))
		if err != nil {
			b.Fatal(err)
		}
		s, err := ftsched.FTSA(inst.Graph, inst.Platform, inst.Costs, ftsched.Options{Epsilon: 2})
		if err != nil {
			b.Fatal(err)
		}
		sc, err := ftsched.UniformCrashes(rng, 20, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ftsched.Simulate(s, sc); err != nil {
			b.Fatal(err)
		}
	}
}
