package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"ftsched/internal/load"
)

// Load-report gating (-load mode). The input is an ftload JSON report, not
// `go test -bench` output, and the gate compares serving-tier capacity
// signals instead of allocs/op: throughput must not drop more than
// -max-throughput-drop and per-endpoint corrected p99 must not grow more
// than -max-p99-growth versus the checked-in baseline.
//
// The baseline is a deterministic ftload run, so the compared numbers carry
// no host noise: virtual latencies come from the seeded cost model and only
// move when the server's observable behavior moves (cache hit pattern,
// endpoint status codes, admission decisions). A CI failure here means the
// PR changed what the server does, not how fast the runner's CPU is.

// loadP99SlackMs absorbs histogram-bucket granularity: a p99 that moved by
// less than a twentieth of a millisecond is quantization, not a regression.
const loadP99SlackMs = 0.05

// CompareLoad gates cur against base. Problems fail the gate; notes are
// informational. Reports produced under different configurations are not
// comparable and fail loudly rather than producing a nonsense verdict.
func CompareLoad(base, cur *load.Report, maxThroughputDrop, maxP99Growth float64) (problems, notes []string) {
	if msg := loadConfigMismatch(base, cur); msg != "" {
		return []string{msg}, nil
	}

	if floor := base.Throughput * (1 - maxThroughputDrop); cur.Throughput < floor {
		problems = append(problems, fmt.Sprintf(
			"throughput regressed: %.1f req/s vs baseline %.1f (floor %.1f, %.0f%%)",
			cur.Throughput, base.Throughput, floor,
			100*(cur.Throughput/base.Throughput-1)))
	}

	for _, name := range base.EndpointNames() {
		b := base.Endpoints[name]
		c, ok := cur.Endpoints[name]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"endpoint %s is in the baseline but saw no traffic; update the baseline if the profile changed", name))
			continue
		}
		limit := b.Latency.P99Ms*(1+maxP99Growth) + loadP99SlackMs
		if c.Latency.P99Ms > limit {
			problems = append(problems, fmt.Sprintf(
				"%s p99 regressed: %.3fms vs baseline %.3fms (limit %.3fms, +%.0f%%)",
				name, c.Latency.P99Ms, b.Latency.P99Ms, limit,
				100*(c.Latency.P99Ms/b.Latency.P99Ms-1)))
		}
		if c.HitRate != b.HitRate {
			notes = append(notes, fmt.Sprintf(
				"%s cache hit rate moved: %.3f vs baseline %.3f", name, c.HitRate, b.HitRate))
		}
	}
	for _, name := range cur.EndpointNames() {
		if _, ok := base.Endpoints[name]; !ok {
			notes = append(notes, fmt.Sprintf(
				"endpoint %s is not in the baseline; add it on the next -update", name))
		}
	}

	// Fresh failures are a regression even when latency stays inside the
	// envelope — a deterministic baseline run is expected to be clean.
	baseBad := base.Total.Rejected + base.Total.ServerErrors + base.Total.TransportErrors
	curBad := cur.Total.Rejected + cur.Total.ServerErrors + cur.Total.TransportErrors
	if curBad > baseBad {
		problems = append(problems, fmt.Sprintf(
			"failed requests grew: %d rejected/5xx/transport vs baseline %d", curBad, baseBad))
	}
	return problems, notes
}

// loadConfigMismatch reports why two load reports are not comparable, or ""
// when they are. Everything that shapes the workload must match; the knobs
// being compared (throughput, latency) of course may differ.
func loadConfigMismatch(base, cur *load.Report) string {
	switch {
	case base.Mode != cur.Mode:
		return fmt.Sprintf("reports are not comparable: mode %q vs baseline %q", cur.Mode, base.Mode)
	case base.Deterministic != cur.Deterministic:
		return fmt.Sprintf("reports are not comparable: deterministic=%v vs baseline %v", cur.Deterministic, base.Deterministic)
	case base.Seed != cur.Seed || base.ZipfS != cur.ZipfS:
		return fmt.Sprintf("reports are not comparable: seed/zipf %d/%g vs baseline %d/%g",
			cur.Seed, cur.ZipfS, base.Seed, base.ZipfS)
	case base.Requests != cur.Requests:
		return fmt.Sprintf("reports are not comparable: %d requests vs baseline %d", cur.Requests, base.Requests)
	case base.Warmup != cur.Warmup:
		return fmt.Sprintf("reports are not comparable: warmup %d vs baseline %d", cur.Warmup, base.Warmup)
	case base.Shards != cur.Shards:
		return fmt.Sprintf("reports are not comparable: %d worker shards vs baseline %d", cur.Shards, base.Shards)
	case base.Corpus != cur.Corpus:
		return fmt.Sprintf("reports are not comparable: corpus %+v vs baseline %+v", cur.Corpus, base.Corpus)
	case !sameJSON(base.Profile, cur.Profile):
		return fmt.Sprintf("reports are not comparable: profile %q differs from baseline %q",
			cur.Profile.Name, base.Profile.Name)
	}
	return ""
}

// sameJSON compares two values by their canonical JSON encoding — exact for
// the slice-bearing Profile struct without reflect.DeepEqual's nil-vs-empty
// pitfalls surviving a marshal round trip.
func sameJSON(a, b any) bool {
	ab, errA := json.Marshal(a)
	bb, errB := json.Marshal(b)
	return errA == nil && errB == nil && string(ab) == string(bb)
}

// runLoadMode is the -load entry point: read the current report, then
// update or gate against the baseline. It mirrors the benchmark mode's
// flow so CI invokes both the same way.
func runLoadMode(r io.Reader, baseline string, update bool, maxThroughputDrop, maxP99Growth float64) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	cur, err := load.ReadReport(data)
	if err != nil {
		return fmt.Errorf("parsing load report: %w", err)
	}
	if baseline == "" {
		return fmt.Errorf("-load needs -baseline")
	}
	if update {
		blob, err := cur.Marshal()
		if err != nil {
			return err
		}
		if err := os.WriteFile(baseline, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("benchdiff: load baseline %s updated (%d requests, %.1f req/s)\n",
			baseline, cur.Requests, cur.Throughput)
		return nil
	}
	blob, err := os.ReadFile(baseline)
	if err != nil {
		return err
	}
	base, err := load.ReadReport(blob)
	if err != nil {
		return fmt.Errorf("%s: %w", baseline, err)
	}
	problems, notes := CompareLoad(base, cur, maxThroughputDrop, maxP99Growth)
	for _, n := range notes {
		fmt.Println("benchdiff: note:", n)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchdiff:", p)
		}
		return fmt.Errorf("load gate failed (%d problems)", len(problems))
	}
	fmt.Printf("benchdiff: load report within throughput -%.0f%% / p99 +%.0f%% of baseline\n",
		100*maxThroughputDrop, 100*maxP99Growth)
	return nil
}
