package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's manifest row. AllocsOp is nil for benchmarks that
// do not call b.ReportAllocs — they are recorded for context but cannot be
// gated.
type Entry struct {
	NsOp     float64 `json:"ns_op"`
	AllocsOp *int64  `json:"allocs_op,omitempty"`
}

// Manifest maps benchmark names (as printed by go test, e.g.
// "BenchmarkEvaluate/trials-64") to their measurements.
type Manifest map[string]Entry

// benchLine matches one result line of `go test -bench` output:
//
//	BenchmarkTune/halving  3  191523993 ns/op  1896610 B/op  19734 allocs/op
//
// Run the benchmarks under GOMAXPROCS=1: with more procs go test appends a
// "-<procs>" suffix to every name, and manifests from hosts with different
// core counts would not line up.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

// allocsField extracts the allocs/op measurement from a line's metric tail.
var allocsField = regexp.MustCompile(`(\d+) allocs/op`)

// ParseBench reads `go test -bench` output and folds repeated runs of one
// benchmark (-count > 1) by taking the minimum ns/op and allocs/op — the
// least-noisy estimate of each.
func ParseBench(r io.Reader) (Manifest, error) {
	m := make(Manifest)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		g := benchLine.FindStringSubmatch(line)
		if g == nil {
			continue
		}
		name := g[1]
		if strings.Contains(name, "--") || strings.HasSuffix(name, "-") {
			return nil, fmt.Errorf("malformed benchmark name %q", name)
		}
		ns, err := strconv.ParseFloat(g[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchmark %s: bad ns/op %q", name, g[2])
		}
		e := Entry{NsOp: ns}
		if a := allocsField.FindStringSubmatch(g[3]); a != nil {
			v, err := strconv.ParseInt(a[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad allocs/op %q", name, a[1])
			}
			e.AllocsOp = &v
		}
		prev, seen := m[name]
		if !seen {
			m[name] = e
			continue
		}
		if e.NsOp < prev.NsOp {
			prev.NsOp = e.NsOp
		}
		if e.AllocsOp != nil && (prev.AllocsOp == nil || *e.AllocsOp < *prev.AllocsOp) {
			prev.AllocsOp = e.AllocsOp
		}
		m[name] = prev
	}
	return m, sc.Err()
}

// allocsSlack is the absolute headroom added on top of the relative bound:
// a benchmark at 8 allocs/op growing to 10 is measurement noise, not a
// regression worth failing CI over.
const allocsSlack = 2

// Compare gates current against base: every baseline benchmark with a
// gateable allocs/op must be present and must not exceed the baseline by
// more than maxRegress (relative) and allocsSlack (absolute). The returned
// problems are human-readable and empty when the gate passes; names are
// reported in sorted order so failures are deterministic.
func Compare(base, current Manifest, maxRegress float64) []string {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	var problems []string
	for _, name := range names {
		b := base[name]
		cur, ok := current[name]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"%s is in the baseline but was not run; update the baseline if it was renamed or removed", name))
			continue
		}
		if b.AllocsOp == nil {
			continue
		}
		if cur.AllocsOp == nil {
			problems = append(problems, fmt.Sprintf(
				"%s no longer reports allocs/op (b.ReportAllocs removed?)", name))
			continue
		}
		limit := float64(*b.AllocsOp) * (1 + maxRegress)
		if float64(*cur.AllocsOp) > limit && *cur.AllocsOp > *b.AllocsOp+allocsSlack {
			problems = append(problems, fmt.Sprintf(
				"%s regressed: %d allocs/op vs baseline %d (limit %.0f, +%.0f%%)",
				name, *cur.AllocsOp, *b.AllocsOp, limit,
				100*(float64(*cur.AllocsOp)/float64(*b.AllocsOp)-1)))
		}
	}
	return problems
}
