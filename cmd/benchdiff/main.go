// Command benchdiff turns `go test -bench` output into a machine-readable
// benchmark manifest and gates allocation regressions against a checked-in
// baseline — the comparator behind CI's bench job.
//
// Usage:
//
//	go test -run=NoTests -bench=. -benchtime=3x -count=3 ./... | tee bench.out
//	benchdiff -input bench.out -out BENCH_PR5.json \
//	          -baseline .github/bench-baseline.json -max-allocs-regression 0.25
//	benchdiff -input bench.out -baseline .github/bench-baseline.json -update
//
// With -load, benchdiff compares ftload JSON reports instead of benchmark
// output, gating serving-tier throughput (-max-throughput-drop, default 20%)
// and per-endpoint corrected p99 (-max-p99-growth, default 30%):
//
//	ftload -mode closed -seed 1 -o BENCH_LOAD.json
//	benchdiff -load -input BENCH_LOAD.json -baseline .github/load-baseline.json
//	benchdiff -load -input BENCH_LOAD.json -baseline .github/load-baseline.json -update
//
// Multiple -count runs of one benchmark are folded by taking the minimum —
// the least-noisy estimate of both ns/op and allocs/op. The gate compares
// allocs/op only: allocation counts are a property of the code, essentially
// independent of the host (run the benchmarks under GOMAXPROCS=1 so worker
// pools size identically everywhere), while ns/op is recorded purely as
// context. A benchmark present in the baseline but missing from the input
// fails the gate, so renaming or deleting a pinned benchmark forces a
// baseline update in the same change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
)

func main() {
	var (
		input    = flag.String("input", "", "go test -bench output to parse (default stdin); an ftload report with -load")
		out      = flag.String("out", "", "write the parsed manifest (benchmark -> ns/op, allocs/op) to this JSON file")
		baseline = flag.String("baseline", "", "baseline manifest to gate against")
		maxRegr  = flag.Float64("max-allocs-regression", 0.25, "maximum tolerated relative allocs/op growth vs. baseline")
		update   = flag.Bool("update", false, "rewrite -baseline from the parsed input instead of gating")
		loadMode = flag.Bool("load", false, "compare ftload JSON reports instead of go test -bench output")
		maxTput  = flag.Float64("max-throughput-drop", 0.20, "-load: maximum tolerated relative throughput drop vs. baseline")
		maxP99   = flag.Float64("max-p99-growth", 0.30, "-load: maximum tolerated relative per-endpoint p99 growth vs. baseline")
	)
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	if *loadMode {
		if err := runLoadMode(r, *baseline, *update, *maxTput, *maxP99); err != nil {
			fatal(err)
		}
		return
	}
	current, err := ParseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark results found in the input"))
	}
	if *out != "" {
		if err := writeManifest(*out, current); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d benchmarks to %s\n", len(current), *out)
	}
	if *baseline == "" {
		return
	}
	if *update {
		if err := writeManifest(*baseline, current); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: baseline %s updated (%d benchmarks)\n", *baseline, len(current))
		return
	}
	base, err := readManifest(*baseline)
	if err != nil {
		fatal(err)
	}
	problems := Compare(base, current, *maxRegr)
	var unseen []string
	for name := range current {
		if _, ok := base[name]; !ok {
			unseen = append(unseen, name)
		}
	}
	sort.Strings(unseen) // deterministic output, like Compare
	for _, name := range unseen {
		fmt.Printf("benchdiff: note: %s is not in the baseline (allocs/op %s); add it on the next -update\n",
			name, formatAllocs(current[name].AllocsOp))
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "benchdiff:", p)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of baseline allocs/op\n", len(base), 100**maxRegr)
}

func formatAllocs(a *int64) string {
	if a == nil {
		return "n/a"
	}
	return fmt.Sprint(*a)
}

func writeManifest(path string, m Manifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func readManifest(path string) (Manifest, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
