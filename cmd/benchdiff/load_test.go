package main

import (
	"os"
	"strings"
	"testing"

	"ftsched/internal/load"
)

// sampleReport builds a comparable pair baseline; tests mutate copies.
func sampleReport() *load.Report {
	mk := func(p99 float64, hits, misses uint64) *load.EndpointReport {
		return &load.EndpointReport{
			Requests:    hits + misses,
			OK:          hits + misses,
			CacheHits:   hits,
			CacheMisses: misses,
			HitRate:     float64(hits) / float64(hits+misses),
			Latency:     load.LatencySummary{Count: hits + misses, P50Ms: 0.4, P99Ms: p99, MaxMs: 2 * p99},
		}
	}
	prof, _ := load.ProfileByName("mixed")
	r := &load.Report{
		Mode:          "closed",
		Deterministic: true,
		Seed:          1,
		ZipfS:         1.0,
		Corpus:        load.CorpusSpec{}.WithDefaults(),
		Profile:       prof,
		Requests:      1000,
		Throughput:    850,
		Endpoints: map[string]*load.EndpointReport{
			"schedule": mk(1.0, 700, 150),
			"evaluate": mk(4.0, 100, 50),
		},
	}
	r.Total = *r.Endpoints["schedule"]
	return r
}

func TestCompareLoadPasses(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	// Within the envelope: throughput -10%, p99 +20%.
	cur.Throughput = 765
	cur.Endpoints["schedule"].Latency.P99Ms = 1.2
	problems, _ := CompareLoad(base, cur, 0.20, 0.30)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
}

func TestCompareLoadThroughputGate(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Throughput = 600 // -29%
	problems, _ := CompareLoad(base, cur, 0.20, 0.30)
	if len(problems) != 1 || !strings.Contains(problems[0], "throughput regressed") {
		t.Fatalf("problems = %v, want one throughput regression", problems)
	}
}

func TestCompareLoadP99Gate(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Endpoints["evaluate"].Latency.P99Ms = 6.0 // +50%
	problems, _ := CompareLoad(base, cur, 0.20, 0.30)
	if len(problems) != 1 || !strings.Contains(problems[0], "evaluate p99 regressed") {
		t.Fatalf("problems = %v, want one evaluate p99 regression", problems)
	}
}

func TestCompareLoadMissingEndpoint(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	delete(cur.Endpoints, "evaluate")
	problems, _ := CompareLoad(base, cur, 0.20, 0.30)
	if len(problems) != 1 || !strings.Contains(problems[0], "evaluate is in the baseline") {
		t.Fatalf("problems = %v, want one missing-endpoint problem", problems)
	}
}

func TestCompareLoadNewErrors(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Total.Rejected = 3
	problems, _ := CompareLoad(base, cur, 0.20, 0.30)
	if len(problems) != 1 || !strings.Contains(problems[0], "failed requests grew") {
		t.Fatalf("problems = %v, want one failed-requests problem", problems)
	}
}

func TestCompareLoadConfigMismatch(t *testing.T) {
	base := sampleReport()
	for _, mutate := range []func(r *load.Report){
		func(r *load.Report) { r.Seed = 2 },
		func(r *load.Report) { r.ZipfS = 1.2 },
		func(r *load.Report) { r.Mode = "open" },
		func(r *load.Report) { r.Deterministic = false },
		func(r *load.Report) { r.Corpus.Size = 32 },
		func(r *load.Report) { r.Profile.Schedulers = []string{"heft"} },
		func(r *load.Report) { r.Requests = 2000 },
		func(r *load.Report) { r.Warmup = 100 },
	} {
		cur := sampleReport()
		mutate(cur)
		problems, _ := CompareLoad(base, cur, 0.20, 0.30)
		if len(problems) != 1 || !strings.Contains(problems[0], "not comparable") {
			t.Fatalf("problems = %v, want one not-comparable problem", problems)
		}
	}
}

func TestCompareLoadHitRateNote(t *testing.T) {
	base, cur := sampleReport(), sampleReport()
	cur.Endpoints["schedule"].HitRate = 0.5
	problems, notes := CompareLoad(base, cur, 0.20, 0.30)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "schedule cache hit rate moved") {
			found = true
		}
	}
	if !found {
		t.Fatalf("notes = %v, want a hit-rate note", notes)
	}
}

// TestRunLoadModeRoundTrip drives the CLI path: -update writes a baseline,
// gating the identical report passes, and gating a degraded one fails.
func TestRunLoadModeRoundTrip(t *testing.T) {
	rep := sampleReport()
	blob, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	baseline := t.TempDir() + "/load-baseline.json"
	if err := runLoadMode(strings.NewReader(string(blob)), baseline, true, 0.20, 0.30); err != nil {
		t.Fatalf("-update: %v", err)
	}
	written, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if string(written) != string(blob) {
		t.Fatal("baseline file is not the report verbatim")
	}
	if err := runLoadMode(strings.NewReader(string(blob)), baseline, false, 0.20, 0.30); err != nil {
		t.Fatalf("gating identical report: %v", err)
	}
	bad := sampleReport()
	bad.Throughput = 100
	badBlob, _ := bad.Marshal()
	err = runLoadMode(strings.NewReader(string(badBlob)), baseline, false, 0.20, 0.30)
	if err == nil || !strings.Contains(err.Error(), "load gate failed") {
		t.Fatalf("gating degraded report: err = %v, want gate failure", err)
	}
}
