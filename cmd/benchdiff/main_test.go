package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ftsched/internal/tune
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTune/halving         	       3	 191523993 ns/op	      8000 trials/op	 1896610 B/op	   19734 allocs/op
BenchmarkTune/halving         	       3	 189000000 ns/op	      8000 trials/op	 1896610 B/op	   19700 allocs/op
BenchmarkTune/naive           	       3	 287152151 ns/op	     12800 trials/op	 1892458 B/op	   19208 allocs/op
BenchmarkCampaign/workers=1   	       3	 123456789 ns/op
BenchmarkEvaluate/trials-64   	       3	   2500000 ns/op	    3120 B/op	      39 allocs/op
PASS
ok  	ftsched/internal/tune	1.919s
`

func intp(v int64) *int64 { return &v }

func TestParseBench(t *testing.T) {
	m, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(m), m)
	}
	// Repeated -count runs fold by minimum, per measurement.
	h := m["BenchmarkTune/halving"]
	if h.NsOp != 189000000 {
		t.Errorf("halving ns/op = %g, want the minimum 189000000", h.NsOp)
	}
	if h.AllocsOp == nil || *h.AllocsOp != 19700 {
		t.Errorf("halving allocs/op = %v, want 19700", h.AllocsOp)
	}
	// No ReportAllocs: ns recorded, allocs absent (and the trials/op custom
	// metric of the tune benchmark must not be mistaken for allocations).
	c := m["BenchmarkCampaign/workers=1"]
	if c.AllocsOp != nil {
		t.Errorf("campaign allocs/op = %v, want absent", *c.AllocsOp)
	}
	if e := m["BenchmarkEvaluate/trials-64"]; e.AllocsOp == nil || *e.AllocsOp != 39 {
		t.Errorf("evaluate allocs/op = %v, want 39", e.AllocsOp)
	}
}

func TestCompare(t *testing.T) {
	base := Manifest{
		"BenchmarkA": {NsOp: 100, AllocsOp: intp(100)},
		"BenchmarkB": {NsOp: 100, AllocsOp: intp(8)},
		"BenchmarkC": {NsOp: 100}, // no allocs: never gated
		"BenchmarkD": {NsOp: 100, AllocsOp: intp(50)},
	}
	cases := []struct {
		name     string
		current  Manifest
		problems int
	}{
		{"identical", Manifest{
			"BenchmarkA": {NsOp: 900, AllocsOp: intp(100)}, // ns/op never gates
			"BenchmarkB": {NsOp: 100, AllocsOp: intp(8)},
			"BenchmarkC": {NsOp: 100},
			"BenchmarkD": {NsOp: 100, AllocsOp: intp(50)},
		}, 0},
		{"within 25%", Manifest{
			"BenchmarkA": {NsOp: 100, AllocsOp: intp(125)},
			"BenchmarkB": {NsOp: 100, AllocsOp: intp(10)}, // +25% but inside absolute slack
			"BenchmarkC": {NsOp: 100},
			"BenchmarkD": {NsOp: 100, AllocsOp: intp(62)},
		}, 0},
		{"regressed", Manifest{
			"BenchmarkA": {NsOp: 100, AllocsOp: intp(126)},
			"BenchmarkB": {NsOp: 100, AllocsOp: intp(8)},
			"BenchmarkC": {NsOp: 100},
			"BenchmarkD": {NsOp: 100, AllocsOp: intp(80)},
		}, 2},
		{"missing benchmark", Manifest{
			"BenchmarkA": {NsOp: 100, AllocsOp: intp(100)},
			"BenchmarkC": {NsOp: 100},
			"BenchmarkD": {NsOp: 100, AllocsOp: intp(50)},
		}, 1},
		{"allocs reporting dropped", Manifest{
			"BenchmarkA": {NsOp: 100},
			"BenchmarkB": {NsOp: 100, AllocsOp: intp(8)},
			"BenchmarkC": {NsOp: 100},
			"BenchmarkD": {NsOp: 100, AllocsOp: intp(50)},
		}, 1},
	}
	for _, c := range cases {
		if got := Compare(base, c.current, 0.25); len(got) != c.problems {
			t.Errorf("%s: %d problems, want %d: %v", c.name, len(got), c.problems, got)
		}
	}
	// New benchmarks in current but absent from base never fail the gate.
	current := Manifest{
		"BenchmarkA":   {NsOp: 100, AllocsOp: intp(100)},
		"BenchmarkB":   {NsOp: 100, AllocsOp: intp(8)},
		"BenchmarkC":   {NsOp: 100},
		"BenchmarkD":   {NsOp: 100, AllocsOp: intp(50)},
		"BenchmarkNew": {NsOp: 100, AllocsOp: intp(999)},
	}
	if got := Compare(base, current, 0.25); len(got) != 0 {
		t.Errorf("new benchmark failed the gate: %v", got)
	}
}
