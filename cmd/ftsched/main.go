// Command ftsched schedules a task graph from JSON files (as produced by
// daggen) and reports the schedule, its latency bounds and, optionally, the
// simulated latency under crashes.
//
// Schedulers are resolved by name through the scheduler registry; run
// ftsched -list-schedulers for the names, aliases and policies this binary
// serves.
//
// Usage:
//
//	ftsched -list-schedulers
//	ftsched -dir work -algo ftsa -eps 2
//	ftsched -dir work -algo mcftsa -eps 2 -crash 2 -trials 10
//	ftsched -dir work -algo ftbar -eps 1 -v
//	ftsched -dir work -algo ftsa-ins -eps 2      # registry-only variant
//	ftsched -dir work -eps 2 -latency 5000       # deadline-checked FTSA
//	ftsched -dir work -algo mcftsa -latency 5000 # deadline-checked MC-FTSA
//	ftsched -dir work -maxeps -latency 5000      # maximize ε (FTSA) in budget
//	ftsched -dir work -compare -eps 2            # every registered scheduler
//	ftsched -dir work -load s.json -crash 1      # replay a saved schedule
//	ftsched -dir work -eps 2 -evaluate -trials 10000            # batch MC eval
//	ftsched -dir work -eps 2 -evaluate -scenario exp:0.0001     # failure law
//	ftsched -dir work -eps 2 -evaluate -scenario trace:prod.jsonl:x0.5:resample
//	ftsched -dir work -load s.json -evaluate -scenario group:4:0.001
//	ftsched -dir work -eps 1 -evaluate -policies static,reschedule # online vs offline
//	ftsched -dir work -eps 2 -evaluate -worst-case 2            # + adversarial search
//	ftsched -dir work -tune -target 0.99 -scenario exp:0.0001   # auto-tune
//	ftsched -dir work -tune -target 0.99 -scenario exp:0.0001 \
//	        -worst-case 1 -robust                               # robust tuning
//
// -evaluate runs the batch fault-injection engine (sim.Evaluate) against the
// computed or loaded schedule: -trials scenarios drawn from -scenario (any
// registered kind — run a server's GET /scenarios or see docs/SCENARIOS.md;
// e.g. uniform:N, exp:LAMBDA, weibull:SHAPE:SCALE, group:SIZE:LAMBDA,
// burst:N:LAMBDA[:SPREAD], staggered:N:HORIZON, and
// trace:FILE[:xSCALE][:resample] replaying a recorded JSONL failure trace),
// reporting the success rate with its Wilson interval, latency mean/p50/p99
// and the degradation-vs-failure-count histogram. -policies additionally
// scores mission execution policies on the SAME scenario draws: "static"
// rides the schedule out unchanged (bit-identical to the plain evaluation),
// while "reschedule" re-plans the surviving suffix of the DAG after every
// crash (internal/mission) — the printed comparison is the offline-vs-online
// gap. -worst-case K adds a deterministic adversarial search (sim.WorstCase)
// next to the Monte-Carlo mean: the most damaging K-crash pattern a budgeted
// search can find against the schedule.
//
// -tune answers "which configuration should I run?": it searches the
// scheduler-registry × ε × policy grid (internal/tune), scoring every
// candidate under -scenario with successive-halving pruning, and prints the
// Pareto frontier of (expected latency, success probability) plus the
// cheapest point meeting the -target success probability. With -worst-case K
// every surviving candidate also gets an adversarial worst-case column, and
// -robust makes the recommendation optimize that worst case instead of the
// Monte-Carlo mean.
//
// The modes are exclusive: -maxeps, -compare, -tune and -load each reject
// flags they would otherwise silently ignore.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ftsched/internal/core"
	"ftsched/internal/dag"
	"ftsched/internal/mission"
	"ftsched/internal/platform"
	"ftsched/internal/prof"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/sim"
	"ftsched/internal/tune"
)

func main() {
	var (
		dir        = flag.String("dir", ".", "directory with graph.json, platform.json, costs.json")
		algo       = flag.String("algo", "ftsa", "scheduler registry name or alias (see -list-schedulers)")
		eps        = flag.Int("eps", 1, "number of tolerated failures ε (defaults to 0 for non-fault-tolerant schedulers)")
		seed       = flag.Int64("seed", 1, "random seed for tie-breaking and crash draws")
		crash      = flag.Int("crash", -1, "simulate this many uniform crashes (-1: no simulation)")
		trials     = flag.Int("trials", 1, "crash simulation trials (-crash), or batch size for -evaluate")
		evaluate   = flag.Bool("evaluate", false, "run the batch fault-injection evaluation (sim.Evaluate) on the schedule")
		scenario   = flag.String("scenario", "", "evaluation scenario spec (default uniform:ε), e.g. uniform:2, exp:0.001, weibull:1.5:2000, group:4:0.001, burst:3:0.001:50, staggered:2:1000, trace:FILE[:xSCALE][:resample]")
		policies   = flag.String("policies", "", "comma-separated mission policies to score side by side under -evaluate (static,reschedule): static rides out failures, reschedule re-plans the surviving DAG suffix after every crash")
		latency    = flag.Float64("latency", 0, "latency budget: deadline-checked scheduling, or the budget for -maxeps")
		policy     = flag.String("policy", "", "scheduler-specific policy (e.g. mcftsa: greedy|bottleneck, heft: noinsertion)")
		maxEps     = flag.Bool("maxeps", false, "maximize ε under the -latency budget (uses FTSA)")
		tuneMode   = flag.Bool("tune", false, "auto-tune: search the registry × ε × policy grid for the (latency, success) Pareto frontier")
		target     = flag.Float64("target", 0.99, "success-probability target of the -tune recommendation")
		worstCase  = flag.Int("worst-case", -1, "adversarial search: report the most damaging K-crash pattern a budgeted search finds (-evaluate and -tune modes; -1: off)")
		worstEvals = flag.Int("worst-evals", 0, "adversarial search replay budget (0: default 4096; requires -worst-case)")
		robust     = flag.Bool("robust", false, "make the -tune recommendation optimize the adversarial worst case (requires -worst-case)")
		verbose    = flag.Bool("v", false, "print the full placement")
		gantt      = flag.Bool("gantt", false, "render an ASCII Gantt chart")
		metrics    = flag.Bool("metrics", false, "print schedule metrics (utilization, comm volume)")
		trace      = flag.Bool("trace", false, "print the event trace of each crash simulation")
		saveTo     = flag.String("save", "", "write the computed schedule to this JSON file")
		loadFrm    = flag.String("load", "", "load a schedule from this JSON file instead of computing one (-eps comes from the file)")
		compare    = flag.Bool("compare", false, "run every registered scheduler side by side and exit")
		listScheds = flag.Bool("list-schedulers", false, "list the registered schedulers (one per line, with aliases) and exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := prof.Start(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ftsched:", err)
		}
	}()
	if *listScheds {
		sched.WriteSchedulerList(os.Stdout)
		return
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	// Each mode rejects flags it would otherwise silently ignore: a user who
	// passes -crash with -compare thinks a simulation ran when none did.
	rejectWith := func(mode string, names ...string) {
		for _, name := range names {
			if set[name] {
				fatal(fmt.Errorf("-%s is ignored by %s mode; remove it", name, mode))
			}
		}
	}
	switch {
	case *maxEps:
		rejectWith("-maxeps", "algo", "eps", "crash", "trials", "v", "gantt", "metrics", "trace", "save", "load", "compare", "policy", "evaluate", "scenario", "policies", "tune", "target", "worst-case", "worst-evals", "robust")
	case *compare:
		rejectWith("-compare", "algo", "latency", "crash", "trials", "v", "gantt", "metrics", "trace", "save", "load", "policy", "evaluate", "scenario", "policies", "tune", "target", "worst-case", "worst-evals", "robust")
	case *tuneMode:
		// The tuner schedules every registry candidate itself; all
		// single-schedule flags are meaningless.
		rejectWith("-tune", "algo", "eps", "latency", "crash", "v", "gantt", "metrics", "trace", "save", "load", "policy", "evaluate", "policies")
	case *loadFrm != "":
		// The policy comparison re-plans through the registry, so it needs
		// the instance flags, not a frozen schedule file.
		rejectWith("-load", "algo", "eps", "latency", "save", "policy", "policies", "tune", "target", "robust")
	default:
		rejectWith("this", "target")
	}
	// The adversarial knobs ride on -evaluate and -tune only, and -robust
	// changes what -tune recommends, so each is rejected outside its mode
	// instead of silently doing nothing.
	if *worstCase >= 0 && !*evaluate && !*tuneMode {
		fatal(fmt.Errorf("-worst-case only applies to -evaluate or -tune; pass one as well"))
	}
	if *worstCase < 0 {
		if set["worst-evals"] {
			fatal(fmt.Errorf("-worst-evals requires -worst-case"))
		}
		if *robust {
			fatal(fmt.Errorf("-robust requires -worst-case"))
		}
	}
	if *robust && !*tuneMode {
		fatal(fmt.Errorf("-robust only applies to -tune"))
	}
	if *tuneMode {
		// -scenario and -trials parameterize the tuner's scoring batches.
	} else if *evaluate {
		// -crash replays single hand-drawn scenarios; -evaluate is the
		// batch engine. Mixing them would double-report.
		for _, name := range []string{"crash", "trace"} {
			if set[name] {
				fatal(fmt.Errorf("-%s does not apply to -evaluate (the batch engine draws its own scenarios)", name))
			}
		}
	} else {
		if set["scenario"] {
			fatal(fmt.Errorf("-scenario only applies to -evaluate; pass it as well"))
		}
		if set["policies"] {
			fatal(fmt.Errorf("-policies only applies to -evaluate; pass it as well"))
		}
		if *crash < 0 {
			for _, name := range []string{"trials", "trace"} {
				if set[name] {
					fatal(fmt.Errorf("-%s only applies to crash simulation; pass -crash or -evaluate as well", name))
				}
			}
		}
	}

	g, p, cm, err := load(*dir)
	if err != nil {
		fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))

	if *maxEps {
		if *latency <= 0 {
			fatal(fmt.Errorf("-maxeps needs a positive -latency"))
		}
		best, s, err := core.MaxToleratedFailures(p.NumProcs(), *latency,
			core.FTSAScheduler(g, p, cm, core.Options{Rng: rng}))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("maximum tolerated failures within latency %.4g: ε = %d (guaranteed %.4g)\n",
			*latency, best, s.UpperBound())
		return
	}

	if *compare {
		if err := runCompare(g, p, cm, *eps, *seed); err != nil {
			fatal(err)
		}
		return
	}

	if *tuneMode {
		if err := runTune(g, p, cm, *scenario, *target, *trials, set["trials"], *seed,
			adversary(*worstCase, *worstEvals), *robust); err != nil {
			fatal(err)
		}
		return
	}

	var s *sched.Schedule
	if *loadFrm != "" {
		f, ferr := os.Open(*loadFrm)
		if ferr != nil {
			fatal(ferr)
		}
		s, err = sched.ReadSchedule(f, g, p, cm)
		f.Close()
		if err != nil {
			fatal(err)
		}
		*eps = s.Epsilon
	} else {
		info, ok := sched.LookupInfo(*algo)
		if !ok {
			fatal(sched.UnknownSchedulerError(*algo))
		}
		// A non-fault-tolerant scheduler cannot replicate; when the user did
		// not ask for a specific ε, default it to 0 instead of erroring on
		// the fault-tolerant default of 1.
		if !info.FaultTolerant && !set["eps"] {
			*eps = 0
		}
		s, err = sched.Run(*algo, g, p, cm, sched.RunOptions{
			Epsilon: *eps, Rng: rng, Policy: *policy, Latency: *latency,
		})
		if err != nil {
			fatal(err)
		}
	}
	if err := s.Validate(); err != nil {
		fatal(fmt.Errorf("generated schedule failed validation: %w", err))
	}
	if *saveTo != "" {
		f, ferr := os.Create(*saveTo)
		if ferr != nil {
			fatal(ferr)
		}
		if _, err := s.WriteTo(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("saved schedule to", *saveTo)
	}

	fmt.Printf("%s schedule: %d tasks on %d processors, ε=%d, pattern=%s\n",
		s.Algorithm, g.NumTasks(), p.NumProcs(), *eps, s.CommPattern)
	fmt.Printf("  lower bound (no failure):      %.4g\n", s.LowerBound())
	fmt.Printf("  upper bound (ε failures):      %.4g\n", s.UpperBound())
	fmt.Printf("  inter-processor messages:      %d\n", s.MessageCount())

	if *verbose {
		printPlacement(s, g)
	}
	if *metrics {
		m, err := s.ComputeMetrics()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  replicas: %d (replication factor %.2f)\n", m.Replicas, m.ReplicationFactor)
		fmt.Printf("  communication volume crossing processors: %.4g\n", m.CommVolume)
		fmt.Printf("  utilization mean/min/max: %.1f%% / %.1f%% / %.1f%%\n",
			100*m.MeanUtilization, 100*m.MinUtilization, 100*m.MaxUtilization)
	}
	if *gantt {
		if err := s.WriteGantt(os.Stdout, sched.GanttOptions{Width: 100}); err != nil {
			fatal(err)
		}
	}

	if *evaluate {
		if err := runEvaluate(s, *scenario, *eps, *trials, set["trials"], *seed); err != nil {
			fatal(err)
		}
		if spec := adversary(*worstCase, *worstEvals); spec != nil {
			if err := runWorstCase(s, *spec); err != nil {
				fatal(err)
			}
		}
		if *policies != "" {
			if err := runPolicyComparison(g, p, cm, *policies, *scenario, *eps, *trials, set["trials"], *seed, *algo, *policy); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *crash >= 0 {
		for trial := 0; trial < *trials; trial++ {
			sc, err := sim.UniformCrashes(rng, p.NumProcs(), *crash)
			if err != nil {
				fatal(err)
			}
			opts := sim.Options{}
			if *trace {
				opts.Trace = &sim.Trace{}
			}
			res, err := sim.RunWithOptions(s, sc, opts)
			if err != nil {
				fmt.Printf("  crash trial %d: FAILED (%v)\n", trial, err)
				continue
			}
			fmt.Printf("  crash trial %d (%d crashes): latency %.4g\n", trial, *crash, res.Latency)
			if *trace {
				if err := opts.Trace.Write(os.Stdout); err != nil {
					fatal(err)
				}
			}
		}
	}
}

// adversary maps the -worst-case/-worst-evals flags to a search spec; a
// negative crash budget means the search is off.
func adversary(crashes, evals int) *sim.AdversarySpec {
	if crashes < 0 {
		return nil
	}
	return &sim.AdversarySpec{Crashes: crashes, MaxEvals: evals}
}

// runTune searches the registry × ε × policy grid for the Pareto frontier
// of (expected latency, success probability) under the given scenario and
// prints the frontier plus the recommendation for the -target success rate.
func runTune(g *dag.Graph, p *platform.Platform, cm *platform.CostModel,
	scenario string, target float64, trials int, trialsSet bool, seed int64,
	worstCase *sim.AdversarySpec, robust bool) error {
	if scenario == "" {
		return fmt.Errorf("-tune needs -scenario (the failure law candidates are scored under), e.g. -scenario exp:0.001")
	}
	sp, err := sim.ParseScenarioSpec(scenario)
	if err != nil {
		return err
	}
	if !trialsSet {
		trials = 1000
	}
	res, err := tune.Run(tune.Spec{
		Graph:     g,
		Platform:  p,
		Costs:     cm,
		Scenario:  sp,
		Trials:    trials,
		Target:    target,
		Seed:      seed,
		WorstCase: worstCase,
		Robust:    robust,
	})
	if err != nil {
		return err
	}
	return tune.WriteASCII(os.Stdout, res)
}

// runWorstCase runs the budgeted adversarial search against the schedule and
// prints the most damaging pattern found next to the Monte-Carlo aggregate.
func runWorstCase(s *sched.Schedule, spec sim.AdversarySpec) error {
	wc, err := sim.WorstCase(s, spec, sim.Options{})
	if err != nil {
		return err
	}
	certainty := "greedy search"
	if wc.Exhaustive {
		certainty = "exhaustive over crash-at-zero patterns"
	}
	fmt.Printf("  worst case (%s, %d evals, %s):\n", wc.Spec, wc.Evals, certainty)
	if wc.Missed {
		fmt.Printf("    MISSED — the pattern starves an exit task\n")
	} else {
		fmt.Printf("    latency %.4g (%+.1f%% vs no-failure baseline)\n",
			wc.Latency, 100*wc.Degradation)
	}
	fmt.Printf("    pattern:")
	for _, c := range wc.Crashes {
		fmt.Printf("  P%d@%.4g", c.Proc, c.Time)
	}
	fmt.Println()
	return nil
}

// runEvaluate runs the batch fault-injection engine on the schedule and
// prints the aggregate.
func runEvaluate(s *sched.Schedule, scenario string, eps, trials int, trialsSet bool, seed int64) error {
	if scenario == "" {
		// The natural default mirrors the paper's crash experiments: ε
		// uniform crashes at time zero (the guarantee region's boundary).
		scenario = fmt.Sprintf("uniform:%d", eps)
	}
	sp, err := sim.ParseScenarioSpec(scenario)
	if err != nil {
		return err
	}
	gen, err := sp.Generator()
	if err != nil {
		return err
	}
	if !trialsSet {
		trials = 1000
	}
	res, err := sim.Evaluate(s, gen, trials, sim.EvalOptions{Seed: seed})
	if err != nil {
		return err
	}
	fmt.Printf("  evaluation: %d trials of scenario %s (seed %d)\n", res.Trials, res.Generator, res.Seed)
	fmt.Printf("    success rate: %.4f  (95%% Wilson [%.4f, %.4f])\n",
		res.SuccessRate, res.SuccessLow, res.SuccessHigh)
	if res.Successes > 0 {
		fmt.Printf("    latency over %d successes: mean %.4g  p50 %.4g  p99 %.4g  max %.4g\n",
			res.Successes, res.Latency.Mean, res.Latency.P50, res.Latency.P99, res.Latency.Max)
	}
	fmt.Printf("    %9s %8s %8s %13s %12s\n", "failures", "trials", "success", "mean latency", "degradation")
	for _, b := range res.ByFailures {
		fmt.Printf("    %9d %8d %7.1f%% %13.4g %+11.1f%%\n",
			b.Failures, b.Trials, 100*b.SuccessRate, b.MeanLatency, 100*b.MeanDegradation)
	}
	return nil
}

// runPolicyComparison scores the requested mission policies on the same
// scenario draws the plain evaluation used, printing offline (static) and
// online (re-scheduling) execution side by side.
func runPolicyComparison(g *dag.Graph, p *platform.Platform, cm *platform.CostModel,
	policiesStr, scenario string, eps, trials int, trialsSet bool,
	seed int64, algo, schedPolicy string) error {
	if scenario == "" {
		scenario = fmt.Sprintf("uniform:%d", eps)
	}
	sp, err := sim.ParseScenarioSpec(scenario)
	if err != nil {
		return err
	}
	gen, err := sp.Generator()
	if err != nil {
		return err
	}
	if !trialsSet {
		trials = 1000
	}
	spec := mission.Spec{
		Graph:       g,
		Platform:    p,
		Costs:       cm,
		Scheduler:   algo,
		Epsilon:     eps,
		SchedPolicy: schedPolicy,
		Seed:        seed,
	}
	fmt.Printf("  mission policies on the same draws (%s, %d trials):\n", sp.String(), trials)
	fmt.Printf("    %-11s %8s %19s %13s %10s\n", "policy", "success", "95% Wilson", "mean latency", "p99")
	for _, name := range strings.Split(policiesStr, ",") {
		pol, err := mission.ParsePolicy(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		spec.Policy = pol
		res, err := mission.EvaluatePolicy(spec, gen, trials, sim.EvalOptions{Seed: seed})
		if err != nil {
			return fmt.Errorf("policy %s: %w", pol, err)
		}
		fmt.Printf("    %-11s %7.1f%% [%7.4f, %7.4f] %13.4g %10.4g\n",
			pol, 100*res.SuccessRate, res.SuccessLow, res.SuccessHigh,
			res.Latency.Mean, res.Latency.P99)
	}
	return nil
}

// runCompare schedules the instance with every registered scheduler
// (non-fault-tolerant ones at ε=0 as references) and prints a comparison.
// Each row gets its own RNG seeded from -seed, so a row reproduces the
// matching single-scheduler run exactly and registering a new scheduler
// cannot shift the others' tie-breaking streams.
func runCompare(g *dag.Graph, p *platform.Platform, cm *platform.CostModel, eps int, seed int64) error {
	type row struct {
		name string
		s    *sched.Schedule
		took time.Duration
	}
	var rows []row
	for _, r := range sched.Registrations() {
		name := r.Name()
		runEps := eps
		if !r.FaultTolerant {
			runEps = 0
			name += "(ε=0)"
		}
		start := time.Now()
		s, err := sched.Run(r.Name(), g, p, cm, sched.RunOptions{
			Epsilon: runEps, Rng: rand.New(rand.NewSource(seed)),
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, row{name: name, s: s, took: time.Since(start)})
	}
	fmt.Printf("%d tasks, %d edges on %d processors, ε=%d\n\n", g.NumTasks(), g.NumEdges(), p.NumProcs(), eps)
	fmt.Printf("%-10s %12s %12s %10s %10s %12s\n", "algorithm", "lower bound", "upper bound", "messages", "quality", "time")
	for _, r := range rows {
		q, err := r.s.QualityRatio()
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %12.4g %12.4g %10d %9.2fx %12s\n",
			r.name, r.s.LowerBound(), r.s.UpperBound(), r.s.MessageCount(), q, r.took.Round(time.Microsecond))
	}
	return nil
}

func printPlacement(s *sched.Schedule, g *dag.Graph) {
	for t := 0; t < g.NumTasks(); t++ {
		fmt.Printf("  task %4d:", t)
		for _, r := range s.Replicas(dag.TaskID(t)) {
			fmt.Printf("  P%-3d[%.4g,%.4g)", r.Proc, r.StartMin, r.FinishMin)
		}
		fmt.Println()
	}
}

func load(dir string) (*dag.Graph, *platform.Platform, *platform.CostModel, error) {
	gf, err := os.Open(filepath.Join(dir, "graph.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	defer gf.Close()
	g, err := dag.Read(gf)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("graph.json: %w", err)
	}
	pf, err := os.Open(filepath.Join(dir, "platform.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	defer pf.Close()
	p, err := platform.Read(pf)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("platform.json: %w", err)
	}
	cf, err := os.Open(filepath.Join(dir, "costs.json"))
	if err != nil {
		return nil, nil, nil, err
	}
	defer cf.Close()
	cm, err := platform.ReadCostModel(cf)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("costs.json: %w", err)
	}
	return g, p, cm, nil
}

func fatal(err error) {
	prof.Stop() // flush any profiles before the hard exit
	fmt.Fprintln(os.Stderr, "ftsched:", err)
	os.Exit(1)
}
