// Command daggen generates scheduling workloads as JSON files: a task graph,
// a platform and an execution-cost matrix, using the paper's generation
// parameters by default.
//
// Usage:
//
//	daggen -out work/                    # paper-style random instance
//	daggen -tasks 500 -procs 50 -g 0.8   # custom size and granularity
//	daggen -family gauss -n 8            # structured family instead
//
// Families: random (default), gnp, chain, forkjoin, intree, outtree, gauss,
// fft, stencil.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"ftsched/internal/dag"
	"ftsched/internal/workload"
)

func main() {
	var (
		out    = flag.String("out", ".", "output directory (graph.json, platform.json, costs.json)")
		family = flag.String("family", "random", "graph family")
		tasks  = flag.Int("tasks", 0, "task count (random family; 0 = paper range [100,150])")
		n      = flag.Int("n", 8, "size parameter for structured families")
		procs  = flag.Int("procs", 20, "processor count")
		gran   = flag.Float64("g", 1.0, "target granularity")
		vol    = flag.Float64("vol", 100, "edge volume for structured families")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	g, err := buildGraph(rng, *family, *tasks, *n, *vol)
	if err != nil {
		fatal(err)
	}
	cfg := workload.DefaultPaperConfig(*gran)
	cfg.Procs = *procs
	inst, err := workload.NewInstanceForGraph(rng, g, cfg)
	if err != nil {
		fatal(err)
	}
	if err := writeAll(*out, inst); err != nil {
		fatal(err)
	}
	fmt.Printf("daggen: wrote %s (%d tasks, %d edges, %d procs, g=%.2f)\n",
		*out, g.NumTasks(), g.NumEdges(), *procs, *gran)
}

func buildGraph(rng *rand.Rand, family string, tasks, n int, vol float64) (*dag.Graph, error) {
	switch family {
	case "random":
		cfg := workload.DefaultRandomDAGConfig()
		if tasks > 0 {
			cfg.MinTasks, cfg.MaxTasks = tasks, tasks
		}
		return workload.RandomDAG(rng, cfg)
	case "gnp":
		if tasks == 0 {
			tasks = 100
		}
		return workload.ErdosRenyiDAG(rng, tasks, 0.1, 50, 150)
	case "chain":
		return workload.Chain(n, vol)
	case "forkjoin":
		return workload.ForkJoin(n, 3, vol)
	case "intree":
		return workload.InTree(2, n, vol)
	case "outtree":
		return workload.OutTree(2, n, vol)
	case "gauss":
		return workload.GaussianElimination(n, vol)
	case "fft":
		return workload.FFT(n, vol)
	case "stencil":
		return workload.Stencil(n, n, vol)
	case "cholesky":
		return workload.Cholesky(n, vol)
	case "lu":
		return workload.LU(n, vol)
	case "pipeline":
		return workload.Pipeline(n, 4, vol)
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}

func writeAll(dir string, inst *workload.Instance) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, w func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return w(f)
	}
	if err := write("graph.json", func(f *os.File) error {
		_, err := inst.Graph.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	if err := write("platform.json", func(f *os.File) error {
		_, err := inst.Platform.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	return write("costs.json", func(f *os.File) error {
		_, err := inst.Costs.WriteTo(f)
		return err
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "daggen:", err)
	os.Exit(1)
}
