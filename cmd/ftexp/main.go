// Command ftexp runs the experiment layer: parallel campaigns over the
// (scheduler, ε, granularity, family, instance) grid, plus the legacy
// paper-figure and table modes.
//
// Campaign mode (the primary interface — a sharded worker pool with
// deterministic per-cell seeding, so any -parallel value yields identical
// aggregates):
//
//	ftexp -campaign paper                      # Figure 1-3 sweeps in one run
//	ftexp -campaign paper -parallel 8          # same output, 8 workers
//	ftexp -campaign paper -format csv          # machine-readable aggregate
//	ftexp -campaign paper -checkpoint c.jsonl  # stream cells to a JSONL file
//	ftexp -campaign paper -checkpoint c.jsonl -resume   # continue after ^C
//	ftexp -campaign custom -schedulers FTSA,MC-FTSA -eps 1,2 \
//	      -gran 0.2:2:0.2 -families random,fft -instances 30
//	ftexp -campaign custom -schedulers ftsa,ftsa-ins -eps 1 -instances 10
//	ftexp -list-schedulers                     # registry names usable above
//
// The -evaluate flag adds a failure-scenario dimension to a custom campaign:
// each cell runs a Monte-Carlo fault-injection batch (-trials scenarios via
// sim.Evaluate) instead of the single-crash replay, and the aggregate gains
// success-rate and p99 columns. Any registered scenario kind works,
// including trace:FILE[:xSCALE][:resample] replay of recorded failure
// traces:
//
//	ftexp -campaign custom -eps 2 -instances 20 -gran 1 \
//	      -evaluate uniform:2,exp:0.001,group:4:0.001 -trials 500
//	ftexp -campaign custom -eps 2 -instances 20 -gran 1 \
//	      -evaluate trace:prod.jsonl:resample -trials 500
//
// The tune campaign searches the scheduler registry instead of sweeping it:
// for every (family, granularity) point it runs the auto-tuner
// (internal/tune) over the registry × -eps × policy grid under one scoring
// scenario, and emits the (latency, success) Pareto frontier plus the
// recommendation for the -target success probability. -worst-case K adds a
// budgeted adversarial search column per candidate, and -robust makes the
// recommendation optimize that worst case:
//
//	ftexp -campaign tune -gran 0.5,1,2 -eps 1,2,5 -procs 20 \
//	      -evaluate exp:0.0002 -trials 1000 -target 0.99
//	ftexp -campaign tune -families random,fft -gran 1 \
//	      -evaluate uniform:2 -format csv
//	ftexp -campaign tune -gran 1 -eps 1,2 -evaluate exp:0.0002 \
//	      -worst-case 1 -robust
//
// Legacy paper modes:
//
//	ftexp -fig 1                 # Figure 1 (ε=1, m=20): bounds, crash, overhead panels
//	ftexp -fig 3 -graphs 20      # Figure 3 with a reduced batch for quick runs
//	ftexp -fig 2 -format csv     # CSV instead of the ASCII tables
//	ftexp -table 1               # Table 1 running-time comparison
//	ftexp -table 1 -maxtasks 2000
//
// Output goes to stdout; each panel is prefixed with a '#' title line, so the
// whole output is valid gnuplot/CSV input after splitting on blank lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ftsched/internal/expt"
	"ftsched/internal/prof"
	"ftsched/internal/sched"
	_ "ftsched/internal/schedulers" // register every built-in scheduler
	"ftsched/internal/sim"
	"ftsched/internal/tune"
)

func main() {
	var (
		campaign   = flag.String("campaign", "", "run a campaign: 'paper' (Figure 1-3 sweeps) or 'custom' (grid from flags)")
		parallel   = flag.Int("parallel", 0, "campaign worker count (0 = GOMAXPROCS)")
		checkpoint = flag.String("checkpoint", "", "campaign JSONL checkpoint file")
		resume     = flag.Bool("resume", false, "resume the campaign from -checkpoint")
		progress   = flag.Bool("progress", false, "report campaign progress on stderr")
		schedulers = flag.String("schedulers", "FTSA,MC-FTSA,FTBAR", "campaign scheduler list (registry names or aliases; see -list-schedulers)")
		listScheds = flag.Bool("list-schedulers", false, "list the registered schedulers (one per line, with aliases) and exit")
		epsList    = flag.String("eps", "1,2,5", "campaign ε list")
		granRange  = flag.String("gran", "0.2:2:0.2", "campaign granularities: 'lo:hi:step' or comma list")
		families   = flag.String("families", "random", "campaign families (see -campaign custom -families help)")
		instances  = flag.Int("instances", 60, "campaign instances per grid point")
		procs      = flag.Int("procs", 20, "campaign platform size")
		tasks      = flag.String("tasks", "100:150", "campaign random-family task range 'min:max'")
		evaluate   = flag.String("evaluate", "", "campaign scenario dimension: comma list of specs (uniform:N, exp:LAMBDA, weibull:SHAPE:SCALE, group:SIZE:LAMBDA, burst:N:LAMBDA[:SPREAD], staggered:N:HORIZON, trace:FILE[:xSCALE][:resample]); exactly one spec in -campaign tune")
		trials     = flag.Int("trials", 0, "fault-injection trials per cell/candidate (requires -evaluate; default 1000)")
		target     = flag.Float64("target", 0.99, "success-probability target of the -campaign tune recommendation")
		worstCase  = flag.Int("worst-case", -1, "-campaign tune: adversarial worst-case column, searching the most damaging K-crash pattern per candidate (-1: off)")
		robust     = flag.Bool("robust", false, "-campaign tune: recommend by adversarial worst case instead of the Monte-Carlo mean (requires -worst-case)")

		fig      = flag.Int("fig", 0, "paper figure to regenerate (1-4)")
		table    = flag.Int("table", 0, "paper table to regenerate (1)")
		x4       = flag.Bool("x4", false, "run experiment X4 (MC-FTSA strict starvation, finding F1)")
		x5       = flag.Bool("x5", false, "run experiment X5 (structured-family comparison)")
		x6       = flag.Bool("x6", false, "run experiment X6 (one-port/multi-port comm models, §7 conjecture)")
		graphs   = flag.Int("graphs", 0, "override graphs/instances per point (campaigns, figures, -x4, -x6; paper: 60)")
		seed     = flag.Int64("seed", 1, "master seed; campaign cells derive deterministic per-cell seeds from it")
		format   = flag.String("format", "ascii", "output format: ascii; csv (campaign, figures, -x4, -x6); json (campaign); svg (campaign, figures)")
		out      = flag.String("out", ".", "output directory (only used by -format svg)")
		maxTasks = flag.Int("maxtasks", 5000, "skip -table 1 rows above this task count")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if err := prof.Start(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer func() {
		if err := prof.Stop(); err != nil {
			fmt.Fprintln(os.Stderr, "ftexp:", err)
		}
	}()
	if *listScheds {
		sched.WriteSchedulerList(os.Stdout)
		return
	}
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if *campaign == "" {
		// Campaign-only flags are meaningless in the legacy modes; reject
		// them instead of silently ignoring a sweep the user thinks ran.
		for _, name := range []string{"parallel", "checkpoint", "resume", "progress",
			"schedulers", "eps", "gran", "families", "instances", "procs", "tasks",
			"evaluate", "trials", "target", "worst-case", "robust"} {
			if setFlags[name] {
				fatal(fmt.Errorf("-%s only applies to -campaign mode", name))
			}
		}
	}

	switch {
	case *campaign != "":
		for _, conflict := range []string{"fig", "table", "x4", "x5", "x6"} {
			if setFlags[conflict] {
				fatal(fmt.Errorf("-campaign and -%s are separate modes; pass one or the other", conflict))
			}
		}
		cfg := campaignFlags{
			preset: *campaign, schedulers: *schedulers, eps: *epsList,
			gran: *granRange, families: *families, instances: *instances,
			procs: *procs, tasks: *tasks, seed: *seed, graphs: *graphs,
			evaluate: *evaluate, trials: *trials,
			set: setFlags,
		}
		if *campaign == "tune" {
			var adv *sim.AdversarySpec
			if *worstCase >= 0 {
				adv = &sim.AdversarySpec{Crashes: *worstCase}
			} else if *robust {
				fatal(fmt.Errorf("-robust requires -worst-case"))
			}
			if err := runTuneCampaign(cfg, *target, *parallel, *format, adv, *robust); err != nil {
				fatal(err)
			}
			return
		}
		for _, name := range []string{"target", "worst-case", "robust"} {
			if setFlags[name] {
				fatal(fmt.Errorf("-%s only applies to -campaign tune", name))
			}
		}
		eng := expt.EngineOptions{
			Workers:    *parallel,
			Checkpoint: *checkpoint,
			Resume:     *resume,
		}
		if *progress {
			eng.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\rftexp: %d/%d cells", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		if err := runCampaign(cfg, eng, *format, *out); err != nil {
			fatal(err)
		}
	case *fig >= 1 && *fig <= 4:
		if err := runFigure(*fig, *graphs, *seed, *format, *out); err != nil {
			fatal(err)
		}
	case *table == 1:
		if *format != "ascii" {
			fatal(fmt.Errorf("-table 1 only supports -format ascii, got %q", *format))
		}
		if setFlags["graphs"] {
			fatal(fmt.Errorf("-graphs is ignored by -table 1; remove it"))
		}
		if err := runTable1(*seed, *maxTasks); err != nil {
			fatal(err)
		}
	case *x4:
		if err := runX4(*seed, *graphs, *format); err != nil {
			fatal(err)
		}
	case *x5:
		if *format != "ascii" {
			fatal(fmt.Errorf("-x5 only supports -format ascii, got %q", *format))
		}
		if setFlags["graphs"] {
			fatal(fmt.Errorf("-graphs is ignored by -x5; remove it"))
		}
		cfg := expt.DefaultFamiliesConfig()
		cfg.Seed = *seed
		rows, err := expt.RunFamilies(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# X5: structured families, ε=%d, m=%d, normalized latency\n", cfg.Epsilon, cfg.Procs)
		if err := expt.WriteFamilies(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case *x6:
		emit, err := figureEmitter(*format)
		if err != nil {
			fatal(err)
		}
		cfg := expt.DefaultCommModelsConfig()
		cfg.Seed = *seed
		if *graphs > 0 {
			cfg.GraphsPerPoint = *graphs
		}
		f, err := expt.RunCommModels(cfg)
		if err != nil {
			fatal(err)
		}
		if err := emit(os.Stdout, f); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runX4(seed int64, graphs int, format string) error {
	cfg := expt.DefaultStarvationConfig()
	cfg.Seed = seed
	if graphs > 0 {
		cfg.GraphsPerPoint = graphs
	}
	emit, err := figureEmitter(format)
	if err != nil {
		return err
	}
	f, err := expt.RunStarvation(cfg)
	if err != nil {
		return err
	}
	return emit(os.Stdout, f)
}

// figureEmitter maps -format to a legacy figure writer, rejecting formats
// those modes cannot produce instead of silently falling back to ASCII.
func figureEmitter(format string) (func(io.Writer, *expt.Figure) error, error) {
	switch format {
	case "ascii":
		return expt.WriteASCII, nil
	case "csv":
		return expt.WriteCSV, nil
	default:
		return nil, fmt.Errorf("this mode supports -format ascii or csv, got %q", format)
	}
}

func fatal(err error) {
	prof.Stop() // flush any profiles before the hard exit
	fmt.Fprintln(os.Stderr, "ftexp:", err)
	os.Exit(1)
}

// runTuneCampaign is the -campaign tune mode: for every (family,
// granularity) workload point it materializes one campaign-seeded instance
// (expt.BuildInstance, index 0) and runs the auto-tuner over the registry ×
// -eps × policy grid, emitting one frontier section per point. The -eps list
// doubles as the tuner's ε ladder and -evaluate carries the single scoring
// scenario; -parallel sets the tuner's candidate-level worker pool. A
// non-nil worstCase adds the adversarial column, and robust flips the
// recommendation to optimize it.
func runTuneCampaign(cfg campaignFlags, target float64, workers int, format string,
	worstCase *sim.AdversarySpec, robust bool) error {
	for _, name := range []string{"schedulers", "instances", "checkpoint", "resume", "progress", "graphs"} {
		if cfg.set[name] {
			return fmt.Errorf("-%s does not apply to -campaign tune (the candidate grid comes from the scheduler registry)", name)
		}
	}
	var write func(io.Writer, *tune.Result) error
	switch format {
	case "ascii":
		write = tune.WriteASCII
	case "csv":
		write = tune.WriteCSV
	default:
		return fmt.Errorf("-campaign tune supports -format ascii or csv, got %q", format)
	}
	if cfg.evaluate == "" {
		return fmt.Errorf("-campaign tune needs -evaluate SPEC (the scenario candidates are scored under)")
	}
	if strings.Contains(cfg.evaluate, ",") {
		return fmt.Errorf("-campaign tune scores every candidate under one scenario; pass exactly one -evaluate spec")
	}
	sp, err := sim.ParseScenarioSpec(cfg.evaluate)
	if err != nil {
		return err
	}
	var ladder []int
	for _, e := range strings.Split(cfg.eps, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(e))
		if err != nil {
			return fmt.Errorf("bad -eps entry %q: %w", e, err)
		}
		ladder = append(ladder, v)
	}
	gran, err := parseGranularities(cfg.gran)
	if err != nil {
		return err
	}
	tasksMin, tasksMax, err := parseRange(cfg.tasks)
	if err != nil {
		return fmt.Errorf("bad -tasks: %w", err)
	}
	trials := cfg.trials
	if !cfg.set["trials"] {
		trials = 1000
	}
	first := true
	for _, fam := range strings.Split(cfg.families, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		for _, g := range gran {
			inst, err := expt.BuildInstance(fam, g, cfg.procs, tasksMin, tasksMax, 0, cfg.seed)
			if err != nil {
				return err
			}
			res, err := tune.Run(tune.Spec{
				Graph:     inst.Graph,
				Platform:  inst.Platform,
				Costs:     inst.Costs,
				Epsilons:  ladder,
				Scenario:  sp,
				Trials:    trials,
				Target:    target,
				Seed:      cfg.seed,
				Workers:   workers,
				WorstCase: worstCase,
				Robust:    robust,
			})
			if err != nil {
				return fmt.Errorf("tune family=%s gran=%g: %w", fam, g, err)
			}
			if !first {
				fmt.Println()
			}
			first = false
			fmt.Printf("# tune family=%s gran=%g procs=%d tasks=%d scenario=%s\n",
				fam, g, cfg.procs, inst.Graph.NumTasks(), res.Scenario)
			if err := write(os.Stdout, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// campaignFlags carries the raw -campaign grid flags before parsing.
type campaignFlags struct {
	preset     string
	schedulers string
	eps        string
	gran       string
	families   string
	instances  int
	procs      int
	tasks      string
	seed       int64
	graphs     int
	evaluate   string
	trials     int
	set        map[string]bool // flags explicitly passed on the command line
}

// buildCampaign turns the flags into a Campaign spec. The "paper" preset
// starts from the Figure 1-3 sweep and only honors -graphs and -seed
// overrides, so its aggregate stays comparable across hosts; passing any
// other grid flag alongside it is rejected rather than silently ignored.
// "custom" builds the whole grid from flags.
func buildCampaign(cfg campaignFlags) (expt.Campaign, error) {
	if cfg.preset == "paper" {
		for _, name := range []string{"schedulers", "eps", "gran", "families", "instances", "procs", "tasks", "evaluate", "trials"} {
			if cfg.set[name] {
				return expt.Campaign{}, fmt.Errorf(
					"-campaign paper fixes the grid; -%s only applies to -campaign custom (use -graphs to shrink the batch)", name)
			}
		}
		c := expt.PaperCampaign()
		c.Seed = cfg.seed
		if cfg.graphs > 0 {
			c.Instances = cfg.graphs
		}
		return c, nil
	}
	if cfg.preset != "custom" {
		return expt.Campaign{}, fmt.Errorf("unknown campaign %q (want 'paper' or 'custom')", cfg.preset)
	}
	var c expt.Campaign
	c.Name = "custom"
	for _, s := range strings.Split(cfg.schedulers, ",") {
		if s = strings.TrimSpace(s); s != "" {
			c.Schedulers = append(c.Schedulers, expt.SchedulerID(s))
		}
	}
	for _, e := range strings.Split(cfg.eps, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(e))
		if err != nil {
			return c, fmt.Errorf("bad -eps entry %q: %w", e, err)
		}
		c.Epsilons = append(c.Epsilons, v)
	}
	gran, err := parseGranularities(cfg.gran)
	if err != nil {
		return c, err
	}
	c.Granularities = gran
	for _, f := range strings.Split(cfg.families, ",") {
		if f = strings.TrimSpace(f); f != "" {
			c.Families = append(c.Families, f)
		}
	}
	if cfg.set["graphs"] && cfg.set["instances"] {
		return c, fmt.Errorf("-graphs and -instances both set the batch size; pass only one")
	}
	c.Instances = cfg.instances
	if cfg.graphs > 0 {
		c.Instances = cfg.graphs
	}
	c.Procs = cfg.procs
	c.TasksMin, c.TasksMax, err = parseRange(cfg.tasks)
	if err != nil {
		return c, fmt.Errorf("bad -tasks: %w", err)
	}
	c.Seed = cfg.seed
	if cfg.set["trials"] && cfg.evaluate == "" {
		return c, fmt.Errorf("-trials only applies with -evaluate; pass a scenario list as well")
	}
	if cfg.evaluate != "" {
		for _, s := range strings.Split(cfg.evaluate, ",") {
			if s = strings.TrimSpace(s); s != "" {
				c.Scenarios = append(c.Scenarios, s)
			}
		}
		// Default only when -trials was not passed: an explicit bad value
		// must reach Validate's error, not silently become 1000.
		c.EvalTrials = cfg.trials
		if !cfg.set["trials"] {
			c.EvalTrials = 1000
		}
	}
	return c, nil
}

// parseGranularities accepts 'lo:hi:step' or a comma-separated list.
func parseGranularities(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad -gran %q: want lo:hi:step", s)
		}
		var lo, hi, step float64
		for i, dst := range []*float64{&lo, &hi, &step} {
			v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
			if err != nil {
				return nil, fmt.Errorf("bad -gran %q: %w", s, err)
			}
			*dst = v
		}
		if step <= 0 || hi < lo {
			return nil, fmt.Errorf("bad -gran %q: need step > 0 and hi >= lo", s)
		}
		var out []float64
		// Index-based stepping avoids drifting past hi on repeated adds.
		for i := 0; ; i++ {
			g := lo + float64(i)*step
			if g > hi+1e-9 {
				break
			}
			out = append(out, g)
		}
		return out, nil
	}
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -gran entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseRange(s string) (int, int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("%q: want min:max", s)
	}
	lo, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, 0, err
	}
	hi, err := strconv.Atoi(strings.TrimSpace(parts[1]))
	if err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}

func runCampaign(cfg campaignFlags, eng expt.EngineOptions, format, outDir string) error {
	// Resolve the writer before the campaign runs, so a bad format fails
	// in milliseconds rather than after hours of compute. SVG is the one
	// mode that writes files instead of stdout, marked by a nil writer.
	var write func(io.Writer, *expt.CampaignResult) error
	switch format {
	case "ascii":
		write = expt.WriteCampaignASCII
	case "csv":
		write = expt.WriteCampaignCSV
	case "json":
		write = expt.WriteCampaignJSON
	case "svg":
	default:
		return fmt.Errorf("unknown campaign format %q (want ascii, csv, json or svg)", format)
	}
	c, err := buildCampaign(cfg)
	if err != nil {
		return err
	}
	res, err := expt.RunCampaign(c, eng)
	if err != nil {
		return err
	}
	if write != nil {
		return write(os.Stdout, res)
	}
	for _, fam := range c.Families {
		for _, eps := range c.Epsilons {
			for _, metric := range []expt.CampaignMetric{expt.MetricLower, expt.MetricCrash, expt.MetricOverhead} {
				f, err := expt.CampaignFigure(res, fam, eps, metric)
				if err != nil {
					return err
				}
				path := filepath.Join(outDir, fmt.Sprintf("campaign-%s-eps%d-%s.svg", fam, eps, metric))
				out, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := expt.WriteSVG(out, f); err != nil {
					out.Close()
					return err
				}
				if err := out.Close(); err != nil {
					return err
				}
				fmt.Println("wrote", path)
			}
		}
	}
	return nil
}

func runFigure(fig, graphs int, seed int64, format, outDir string) error {
	cfg, err := expt.FigureConfig(fig)
	if err != nil {
		return err
	}
	cfg.Seed = seed
	if graphs > 0 {
		cfg.GraphsPerPoint = graphs
	}
	var set *expt.FigureSet
	if fig == 4 {
		set, err = expt.RunFigure4(cfg)
	} else {
		set, err = expt.Run(cfg)
	}
	if err != nil {
		return err
	}
	panels := []struct {
		name, suffix string
		f            *expt.Figure
	}{
		{fmt.Sprintf("Figure %d(a)", fig), "a", set.Bounds},
		{fmt.Sprintf("Figure %d(b)", fig), "b", set.Crash},
		{fmt.Sprintf("Figure %d(c)", fig), "c", set.Overhead},
	}
	if fig == 4 {
		panels = panels[1:]
		panels[0].name, panels[0].suffix = "Figure 4(a)", "a"
		panels[1].name, panels[1].suffix = "Figure 4(b)", "b"
	}
	if format == "svg" {
		for _, p := range panels {
			if p.f == nil {
				continue
			}
			path := filepath.Join(outDir, fmt.Sprintf("figure%d%s.svg", fig, p.suffix))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := expt.WriteSVG(f, p.f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	}
	emit, err := figureEmitter(format)
	if err != nil {
		return err
	}
	first := true
	for _, p := range panels {
		if p.f == nil {
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		fmt.Printf("# %s\n", p.name)
		if err := emit(os.Stdout, p.f); err != nil {
			return err
		}
	}
	return nil
}

func runTable1(seed int64, maxTasks int) error {
	cfg := expt.DefaultTable1Config()
	cfg.Seed = seed
	var counts []int
	for _, v := range cfg.TaskCounts {
		if v <= maxTasks {
			counts = append(counts, v)
		}
	}
	cfg.TaskCounts = counts
	rows, err := expt.RunTable1(cfg)
	if err != nil {
		return err
	}
	fmt.Println("# Table 1: running times in seconds (this host)")
	return expt.WriteTable1(os.Stdout, rows)
}
