// Command ftexp regenerates the paper's evaluation: Figures 1-4 and Table 1.
//
// Usage:
//
//	ftexp -fig 1                 # Figure 1 (ε=1, m=20): bounds, crash, overhead panels
//	ftexp -fig 3 -graphs 20      # Figure 3 with a reduced batch for quick runs
//	ftexp -fig 2 -format csv     # CSV instead of the ASCII tables
//	ftexp -table 1               # Table 1 running-time comparison
//	ftexp -table 1 -maxtasks 2000
//
// Output goes to stdout; each panel is prefixed with a '#' title line, so the
// whole output is valid gnuplot/CSV input after splitting on blank lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ftsched/internal/expt"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "paper figure to regenerate (1-4)")
		table    = flag.Int("table", 0, "paper table to regenerate (1)")
		x4       = flag.Bool("x4", false, "run experiment X4 (MC-FTSA strict starvation, finding F1)")
		x5       = flag.Bool("x5", false, "run experiment X5 (structured-family comparison)")
		x6       = flag.Bool("x6", false, "run experiment X6 (one-port/multi-port comm models, §7 conjecture)")
		graphs   = flag.Int("graphs", 0, "override graphs per point (paper: 60)")
		seed     = flag.Int64("seed", 1, "random seed")
		format   = flag.String("format", "ascii", "output format: ascii, csv or svg")
		out      = flag.String("out", ".", "output directory for -format svg")
		maxTasks = flag.Int("maxtasks", 5000, "largest task count for -table 1")
	)
	flag.Parse()

	switch {
	case *fig >= 1 && *fig <= 4:
		if err := runFigure(*fig, *graphs, *seed, *format, *out); err != nil {
			fatal(err)
		}
	case *table == 1:
		if err := runTable1(*seed, *maxTasks); err != nil {
			fatal(err)
		}
	case *x4:
		if err := runX4(*seed, *graphs, *format); err != nil {
			fatal(err)
		}
	case *x5:
		cfg := expt.DefaultFamiliesConfig()
		cfg.Seed = *seed
		rows, err := expt.RunFamilies(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# X5: structured families, ε=%d, m=%d, normalized latency\n", cfg.Epsilon, cfg.Procs)
		if err := expt.WriteFamilies(os.Stdout, rows); err != nil {
			fatal(err)
		}
	case *x6:
		cfg := expt.DefaultCommModelsConfig()
		cfg.Seed = *seed
		if *graphs > 0 {
			cfg.GraphsPerPoint = *graphs
		}
		f, err := expt.RunCommModels(cfg)
		if err != nil {
			fatal(err)
		}
		emit := expt.WriteASCII
		if *format == "csv" {
			emit = expt.WriteCSV
		}
		if err := emit(os.Stdout, f); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runX4(seed int64, graphs int, format string) error {
	cfg := expt.DefaultStarvationConfig()
	cfg.Seed = seed
	if graphs > 0 {
		cfg.GraphsPerPoint = graphs
	}
	f, err := expt.RunStarvation(cfg)
	if err != nil {
		return err
	}
	emit := expt.WriteASCII
	if format == "csv" {
		emit = expt.WriteCSV
	}
	return emit(os.Stdout, f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftexp:", err)
	os.Exit(1)
}

func runFigure(fig, graphs int, seed int64, format, outDir string) error {
	cfg, err := expt.FigureConfig(fig)
	if err != nil {
		return err
	}
	cfg.Seed = seed
	if graphs > 0 {
		cfg.GraphsPerPoint = graphs
	}
	var set *expt.FigureSet
	if fig == 4 {
		set, err = expt.RunFigure4(cfg)
	} else {
		set, err = expt.Run(cfg)
	}
	if err != nil {
		return err
	}
	panels := []struct {
		name, suffix string
		f            *expt.Figure
	}{
		{fmt.Sprintf("Figure %d(a)", fig), "a", set.Bounds},
		{fmt.Sprintf("Figure %d(b)", fig), "b", set.Crash},
		{fmt.Sprintf("Figure %d(c)", fig), "c", set.Overhead},
	}
	if fig == 4 {
		panels = panels[1:]
		panels[0].name, panels[0].suffix = "Figure 4(a)", "a"
		panels[1].name, panels[1].suffix = "Figure 4(b)", "b"
	}
	if format == "svg" {
		for _, p := range panels {
			if p.f == nil {
				continue
			}
			path := filepath.Join(outDir, fmt.Sprintf("figure%d%s.svg", fig, p.suffix))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := expt.WriteSVG(f, p.f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
		return nil
	}
	emit := expt.WriteASCII
	if format == "csv" {
		emit = expt.WriteCSV
	}
	first := true
	for _, p := range panels {
		if p.f == nil {
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		fmt.Printf("# %s\n", p.name)
		if err := emit(os.Stdout, p.f); err != nil {
			return err
		}
	}
	return nil
}

func runTable1(seed int64, maxTasks int) error {
	cfg := expt.DefaultTable1Config()
	cfg.Seed = seed
	var counts []int
	for _, v := range cfg.TaskCounts {
		if v <= maxTasks {
			counts = append(counts, v)
		}
	}
	cfg.TaskCounts = counts
	rows, err := expt.RunTable1(cfg)
	if err != nil {
		return err
	}
	fmt.Println("# Table 1: running times in seconds (this host)")
	return expt.WriteTable1(os.Stdout, rows)
}
