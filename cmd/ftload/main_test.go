package main

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"ftsched/internal/load"
)

// loadArgs keeps the determinism tests fast: a small corpus and a modest
// request budget still exercise all three endpoints of the mixed profile.
var loadArgs = []string{
	"-mode", "closed", "-seed", "1",
	"-requests", "150", "-corpus-size", "4", "-tasks-min", "12", "-tasks-max", "24",
}

// TestRunByteIdentical pins the headline acceptance property: the same
// ftload invocation against the in-process server produces byte-identical
// JSON reports, run after run.
func TestRunByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(loadArgs, &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(loadArgs, &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ between identical runs:\n--- first ---\n%s\n--- second ---\n%s", a.Bytes(), b.Bytes())
	}
	rep, err := load.ReadReport(a.Bytes())
	if err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	if !rep.Deterministic || rep.Mode != "closed" || rep.Seed != 1 {
		t.Fatalf("report echo wrong: deterministic=%v mode=%q seed=%d", rep.Deterministic, rep.Mode, rep.Seed)
	}
	if rep.Requests != 150 {
		t.Fatalf("Requests = %d, want 150", rep.Requests)
	}
	if rep.Total.OK != rep.Requests {
		t.Fatalf("OK = %d of %d requests; deterministic smoke run must not error", rep.Total.OK, rep.Requests)
	}
}

// TestRunWorkerCountInvariant pins the harder half of the property: the
// deterministic report must not depend on -workers either.
func TestRunWorkerCountInvariant(t *testing.T) {
	var base bytes.Buffer
	if err := run(append([]string{"-workers", "1"}, loadArgs...), &base); err != nil {
		t.Fatalf("workers=1 run: %v", err)
	}
	for _, w := range []string{"2", "8"} {
		var got bytes.Buffer
		if err := run(append([]string{"-workers", w}, loadArgs...), &got); err != nil {
			t.Fatalf("workers=%s run: %v", w, err)
		}
		if !bytes.Equal(base.Bytes(), got.Bytes()) {
			t.Fatalf("report with -workers %s differs from -workers 1", w)
		}
	}
}

// TestRunShardCountInvariant extends the worker-count property to the
// deployment shape: the same deterministic run against 2 or 4 in-process
// shards behind a coordinator reports exactly what the bare server reports,
// except for the shards echo itself. This is the CLI face of the sharding
// guarantee — disjoint stable cache keyspaces make the deployment
// behaviorally invisible.
func TestRunShardCountInvariant(t *testing.T) {
	normalized := func(shards string) string {
		var buf bytes.Buffer
		if err := run(append([]string{"-shards", shards}, loadArgs...), &buf); err != nil {
			t.Fatalf("shards=%s run: %v", shards, err)
		}
		rep, err := load.ReadReport(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		if shards != "1" {
			want, _ = strconv.Atoi(shards)
		}
		if rep.Shards != want {
			t.Fatalf("shards=%s report echoes shards=%d, want %d", shards, rep.Shards, want)
		}
		rep.Shards = 0
		data, err := rep.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	base := normalized("1")
	for _, shards := range []string{"2", "4"} {
		if got := normalized(shards); got != base {
			t.Fatalf("-shards %s report differs from the bare server:\n--- bare ---\n%s\n--- shards=%s ---\n%s",
				shards, base, shards, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-mode", "sideways"},
		{"-profile", "nope"},
		{"-requests", "-1"},
		{"-shards", "0"},
		{"-shards", "2", "-target", "http://localhost:1"},
		{"positional"},
	}
	for _, args := range cases {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// TestRunProfileFile exercises the custom-profile path end to end, including
// the strict-decoding guard.
func TestRunProfileFile(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/profile.json"
	writeFile(t, good, `{"name":"custom","weights":{"schedule":1,"evaluate":0,"tune":0},`+
		`"schedulers":["heft"],"epsilons":[0],"seeds":[7],`+
		`"eval_trials":[10],"eval_scenarios":["uniform:1"],"eval_seeds":[1],`+
		`"tune_trials":10,"tune_epsilons":[1],"tune_target":0.9}`)
	var buf bytes.Buffer
	args := append([]string{"-profile-file", good}, loadArgs...)
	if err := run(args, &buf); err != nil {
		t.Fatalf("custom profile run: %v", err)
	}
	rep, err := load.ReadReport(buf.Bytes())
	if err != nil {
		t.Fatalf("parsing report: %v", err)
	}
	if rep.Profile.Name != "custom" {
		t.Fatalf("profile name = %q, want custom", rep.Profile.Name)
	}
	if len(rep.Endpoints) != 1 || rep.Endpoints["schedule"] == nil {
		t.Fatalf("endpoints = %v, want schedule only", rep.EndpointNames())
	}

	bad := dir + "/bad.json"
	writeFile(t, bad, `{"name":"typo","wieghts":{"schedule":1}}`)
	if err := run(append([]string{"-profile-file", bad}, loadArgs...), &buf); err == nil ||
		!strings.Contains(err.Error(), "wieghts") {
		t.Fatalf("misspelled profile field: err = %v, want unknown-field error", err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
