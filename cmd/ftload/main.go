// Command ftload load-tests the ftserved serving tier: it synthesizes a
// zipf-skewed stream of /schedule, /evaluate and /tune requests over a
// generated instance corpus and reports throughput, corrected latency
// quantiles, cache behavior and error counts as deterministic JSON.
//
// Usage:
//
//	ftload                                  # closed loop vs in-process server
//	ftload -mode open -rate 500             # paced arrivals, CO-corrected p99
//	ftload -mode search -slo 20ms           # binary-search max sustainable rate
//	ftload -target http://localhost:8080    # drive a live ftserved
//	ftload -shards 4                        # in-process coordinator over 4 shards
//	ftload -profile evaluate -zipf 1.2      # heavier /evaluate mix, more skew
//	ftload -deterministic=false -workers 8  # wall-clock measurement
//
// Modes:
//
//	closed   N workers issue back-to-back requests (optional -think pause).
//	open     requests arrive at -rate/sec; latency is measured from each
//	         request's intended send time, so sender backlog is charged to
//	         the affected requests (coordinated-omission correction).
//	search   binary-search the highest open-loop rate whose corrected p99
//	         meets -slo within -error-budget, then rerun at that rate.
//
// Without -target, ftload builds an in-process server and defaults to
// deterministic mode: a fixed seed yields a byte-identical report across
// runs and across -workers values. With -target (or -deterministic=false),
// latencies are wall-clock measurements. See docs/LOAD.md for the report
// schema and benchdiff -load for comparing two reports.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"ftsched/internal/load"
	"ftsched/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftload:", err)
		os.Exit(1)
	}
}

// run parses args, executes one load run and writes the JSON report to out
// (or -o). It is the whole program behind main, kept re-entrant so tests can
// invoke the binary's exact code path twice and compare bytes.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftload", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "closed", "closed, open or search")
		target   = fs.String("target", "", "base URL of a live ftserved (default: in-process server)")
		requests = fs.Int("requests", 1000, "request budget per run (per probe in search mode)")
		warmup   = fs.Int("warmup", 0, "unrecorded cache-priming requests before measurement")
		workers  = fs.Int("workers", 4, "closed-loop workers / open-loop sender cap")
		think    = fs.Duration("think", 0, "closed-loop pause after each request")
		rate     = fs.Float64("rate", 200, "open-loop arrival rate, requests/second")
		seed     = fs.Int64("seed", 1, "seed for every random choice (zipf draws, request parameters)")
		zipf     = fs.Float64("zipf", 1.0, "zipf popularity exponent over corpus ranks (0: uniform)")
		profName = fs.String("profile", "mixed",
			"traffic profile: "+strings.Join(load.ProfileNames(), ", "))
		profFile = fs.String("profile-file", "", "JSON file overriding -profile with a custom profile")
		det      = fs.Bool("deterministic", true,
			"virtual-clock mode: seeded latency model, byte-identical reports (default false with -target)")
		output = fs.String("o", "", "write the report here instead of stdout")

		corpusSize = fs.Int("corpus-size", 16, "distinct instances in the corpus")
		family     = fs.String("family", "random", "corpus DAG family (or \"mixed\" to cycle all)")
		procs      = fs.Int("procs", 8, "platform size of every corpus instance")
		tasksMin   = fs.Int("tasks-min", 30, "minimum random-family task count")
		tasksMax   = fs.Int("tasks-max", 60, "maximum random-family task count")
		gran       = fs.Float64("granularity", 1.0, "computation-to-communication ratio")
		corpusSeed = fs.Int64("corpus-seed", 0, "corpus generation seed (separate from -seed: same instances, different traffic)")

		slo       = fs.Duration("slo", 20*time.Millisecond, "search mode: corrected-p99 objective")
		errBudget = fs.Float64("error-budget", 0.01, "search mode: tolerated 429/5xx/transport fraction")
		rateMin   = fs.Float64("rate-min", 10, "search mode: bracket floor, requests/second")
		rateMax   = fs.Float64("rate-max", 50000, "search mode: bracket ceiling, requests/second")
		probes    = fs.Int("probes", 12, "search mode: maximum binary-search probes")

		srvWorkers = fs.Int("server-workers", 0, "in-process server: scheduling workers per shard (0: one per core)")
		srvQueue   = fs.Int("server-queue", 0, "in-process server: queue bound per shard (0: 2x workers)")
		srvCache   = fs.Int("server-cache", 4096, "in-process server: response cache entries per shard")
		srvShards  = fs.Int("shards", 1, "in-process worker shards behind a coordinator (1: a bare server)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	// A live target measures wall time unless the user explicitly insisted
	// on the virtual clock.
	detSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "deterministic" {
			detSet = true
		}
	})
	deterministic := *det
	if *target != "" && !detSet {
		deterministic = false
	}

	profile, err := load.ProfileByName(*profName)
	if err != nil {
		return err
	}
	if *profFile != "" {
		profile, err = readProfile(*profFile)
		if err != nil {
			return err
		}
	}

	zipfS := *zipf
	if zipfS == 0 {
		zipfS = load.ZipfUniform
	}
	opts := load.Options{
		Mode:          *mode,
		Workers:       *workers,
		Think:         *think,
		Requests:      *requests,
		Warmup:        *warmup,
		Rate:          *rate,
		Seed:          *seed,
		ZipfS:         zipfS,
		Deterministic: deterministic,
		Profile:       profile,
		Corpus: load.CorpusSpec{
			Size:        *corpusSize,
			Family:      *family,
			Procs:       *procs,
			TasksMin:    *tasksMin,
			TasksMax:    *tasksMax,
			Granularity: *gran,
			Seed:        *corpusSeed,
		},
		SLO:          *slo,
		ErrorBudget:  *errBudget,
		RateMin:      *rateMin,
		RateMax:      *rateMax,
		SearchProbes: *probes,
	}

	if *srvShards < 1 {
		return fmt.Errorf("need -shards >= 1, got %d", *srvShards)
	}
	if *srvShards > 1 {
		// A bare server reports shards: 0 ("no deployment in front"), so
		// pre-sharding baselines stay comparable; a sharded run echoes the
		// shard count it measured.
		opts.Shards = *srvShards
	}

	var tgt load.Target
	if *target != "" {
		if *srvShards > 1 {
			return fmt.Errorf("-shards builds an in-process deployment and cannot combine with -target (point -target at a running coordinator instead)")
		}
		tgt = load.URLTarget{Base: *target}
	} else {
		sharded, closeTarget := load.ShardedTarget(*srvShards, service.Config{
			Workers:      *srvWorkers,
			Queue:        *srvQueue,
			CacheEntries: *srvCache,
		})
		defer closeTarget()
		tgt = sharded
	}

	rep, err := load.Run(tgt, opts)
	if err != nil {
		return err
	}
	data, err := rep.Marshal()
	if err != nil {
		return err
	}
	if *output != "" {
		return os.WriteFile(*output, data, 0o644)
	}
	_, err = out.Write(data)
	return err
}

// readProfile loads a custom traffic profile. Strict decoding: a typo'd
// field name should fail the run, not silently fall back to a default pool.
func readProfile(path string) (load.Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return load.Profile{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p load.Profile
	if err := dec.Decode(&p); err != nil {
		return load.Profile{}, fmt.Errorf("parsing profile %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return load.Profile{}, err
	}
	return p, nil
}
