// Command ftserved runs the fault-tolerant scheduling service: a
// long-running HTTP server that accepts DAG + platform + ε scheduling
// requests, runs FTSA / MC-FTSA / FTBAR / HEFT on a bounded worker pool,
// and serves repeated requests from a fingerprint-keyed response cache.
//
// Usage:
//
//	ftserved                          # listen on :8080, one worker per core
//	ftserved -addr :9000 -workers 4   # explicit socket and pool size
//	ftserved -queue 64 -cache 10000   # deeper queue, bigger response cache
//	ftserved -max-tasks 5000 -v       # reject huge instances, log requests
//	ftserved -max-trials 50000        # cap one /evaluate or /tune batch
//	ftserved -max-candidates 64       # cap one /tune candidate grid
//	ftserved -coordinator -shards 4   # coordinator over 4 in-process shards
//	ftserved -coordinator -shard-urls http://w1:8080,http://w2:8080
//	                                  # coordinator over remote workers
//
// In coordinator mode the process fronts N worker shards: each request body
// is decoded and fingerprinted once at the door (malformed input never
// reaches a worker) and forwarded to the shard that owns the fingerprint, so
// every shard keeps a disjoint, stable slice of the cache keyspace and the
// deployment serves byte-identical responses to a single server. -shards
// runs the workers in process; -shard-urls points at standalone ftserved
// workers instead.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST /schedule   schedule an instance, returns bounds + metrics JSON
//	POST /evaluate   schedule + Monte-Carlo failure injection: success rate
//	                 (Wilson interval), latency p50/p99, degradation histogram
//	POST /tune       auto-tune: Pareto frontier over the scheduler registry
//	                 × ε × policy grid, with a recommended operating point
//	POST /missions   async online mission (202 + id): execute the schedule
//	                 against a failure scenario, re-planning after crashes
//	GET  /missions/{id}         poll state / the final deterministic report
//	GET  /missions/{id}/events  stream the ordered event log as JSONL
//	GET  /healthz    liveness probe
//	GET  /stats      cache hit rate, queue depth, p50/p99 latency
//
// The server drains in-flight requests on SIGINT/SIGTERM before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ftsched/internal/coord"
	"ftsched/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "scheduling workers (0: one per core)")
		queue       = flag.Int("queue", 0, "pending-request queue bound (0: 2x workers); overflow returns 429")
		cache       = flag.Int("cache", 4096, "response cache capacity in entries")
		cacheShards = flag.Int("cache-shards", 16, "response cache shard count (lock striping, not worker shards)")
		maxTasks    = flag.Int("max-tasks", 0, "reject instances with more tasks (0: unlimited)")
		maxTrials   = flag.Int("max-trials", 0, "reject /evaluate and /tune requests with more trials (0: 100000)")
		maxCands    = flag.Int("max-candidates", 0, "reject /tune requests deriving more candidates (0: 256)")
		maxBatch    = flag.Int("max-batch", 0, "reject /schedule/batch envelopes with more items (0: 256)")
		maxMissions = flag.Int("max-missions", 0, "retained missions per worker; when all are running, new /missions return 429 (0: 1024)")
		maxBody     = flag.Int64("max-body", 32<<20, "request body limit in bytes")
		verbose     = flag.Bool("v", false, "log every /schedule and /evaluate request")

		coordinator = flag.Bool("coordinator", false, "front worker shards instead of serving directly")
		shards      = flag.Int("shards", 2, "coordinator: in-process worker shard count")
		shardURLs   = flag.String("shard-urls", "", "coordinator: comma-separated remote worker base URLs (overrides -shards)")
	)
	flag.Parse()

	cfg := service.Config{
		Workers:       *workers,
		Queue:         *queue,
		CacheEntries:  *cache,
		CacheShards:   *cacheShards,
		MaxTasks:      *maxTasks,
		MaxTrials:     *maxTrials,
		MaxCandidates: *maxCands,
		MaxBatchItems: *maxBatch,
		MaxMissions:   *maxMissions,
		MaxBodyBytes:  *maxBody,
	}
	logger := log.New(os.Stderr, "ftserved: ", log.LstdFlags)
	if *verbose {
		cfg.Log = logger
	}

	var handler http.Handler
	var closeShards func()
	switch {
	case !*coordinator:
		svc := service.New(cfg)
		handler = svc
		closeShards = svc.Close
	case *shardURLs != "":
		// Remote workers: each URL is a standalone ftserved this process
		// routes to. Their pools are theirs to drain.
		var members []http.Handler
		for _, base := range strings.Split(*shardURLs, ",") {
			base = strings.TrimSpace(base)
			if base == "" {
				fatal(errors.New("-shard-urls contains an empty entry"))
			}
			members = append(members, &coord.Proxy{Base: base})
		}
		handler = coord.New(members, coord.Options{MaxBodyBytes: *maxBody, MaxTasks: *maxTasks, MaxBatchItems: *maxBatch, Log: cfg.Log})
		closeShards = func() {}
	default:
		if *shards < 1 {
			fatal(fmt.Errorf("need -shards >= 1, got %d", *shards))
		}
		members := make([]http.Handler, *shards)
		servers := make([]*service.Server, *shards)
		for i := range members {
			shardCfg := cfg
			shardCfg.Shard = strconv.Itoa(i)
			servers[i] = service.New(shardCfg)
			members[i] = servers[i]
		}
		handler = coord.New(members, coord.Options{MaxBodyBytes: *maxBody, MaxTasks: *maxTasks, MaxBatchItems: *maxBatch, Log: cfg.Log})
		closeShards = func() {
			for _, s := range servers {
				s.Close()
			}
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if c, ok := handler.(*coord.Coordinator); ok {
		logger.Printf("coordinating %d shards on %s", c.Shards(), *addr)
	} else {
		logger.Printf("listening on %s (workers=%d queue=%d cache=%d)",
			*addr, handler.(*service.Server).Workers(), handler.(*service.Server).QueueCapacity(), *cache)
	}

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, let in-flight requests
	// finish, then drain the worker pool.
	logger.Println("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	closeShards()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ftserved:", err)
	os.Exit(1)
}
